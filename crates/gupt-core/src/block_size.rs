//! Optimal block-size selection from aged data (§4.3).
//!
//! Increasing the block size β shrinks the estimation error (each block
//! sees more data) but grows the Laplace noise (fewer blocks ℓ = n/β, so
//! the average's sensitivity `s/ℓ` rises). The paper picks `ℓ = n^α` by
//! minimising the empirical error on the aged dataset (Equation 2):
//!
//! ```text
//!   err(α) = |mean_i f(T_np,i) − f(T_np)|  +  √2·s / (ε·n^α)
//!            └──────── A: estimation ────┘   └── B: noise ──┘
//! ```
//!
//! over `α ∈ [1 − log n_np / log n, 1]` (the lower limit keeps the block
//! size within the aged sample). The paper suggests hill climbing; this
//! implementation evaluates a coarse grid and then refines around the
//! best grid point, caching program runs per distinct block size.

use crate::aging::aged_block_stats;
use crate::cache::Memo;
use crate::computation_manager::ComputationManager;
use crate::error::GuptError;
use gupt_dp::Epsilon;
use gupt_sandbox::view::RowStore;
use gupt_sandbox::BlockProgram;
use std::sync::Arc;

/// Result of the optimizer: the chosen block size and its predicted error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSizeChoice {
    /// Chosen block size β.
    pub block_size: usize,
    /// Empirical error (Equation 2) at that block size.
    pub predicted_error: f64,
    /// The corresponding exponent α (ℓ = n^α).
    pub alpha: f64,
}

/// Number of coarse grid points over the feasible α interval.
const GRID_POINTS: usize = 12;

/// Number of hill-climbing refinement rounds around the best grid point.
const REFINE_ROUNDS: usize = 4;

/// Picks the block size minimising Equation 2 on the aged data.
///
/// * `n` — size of the *private* dataset the query will run on.
/// * `output_width` — the clamping-range width `s` (max across dims).
/// * `eps_per_dim` — the aggregation budget per output dimension.
pub fn optimal_block_size(
    manager: &ComputationManager,
    program: &Arc<dyn BlockProgram>,
    aged: &Arc<RowStore>,
    n: usize,
    output_width: f64,
    eps_per_dim: Epsilon,
) -> Result<BlockSizeChoice, GuptError> {
    if aged.is_empty() {
        return Err(GuptError::NoAgedData("<aged view>".into()));
    }
    if n < 2 {
        return Err(GuptError::InvalidSpec(
            "block-size optimization needs n ≥ 2".into(),
        ));
    }
    let n_np = aged.len();
    let ln_n = (n as f64).ln();
    // Feasibility: block size n^{1−α} ≤ n_np ⇒ α ≥ 1 − ln n_np / ln n.
    let alpha_min = (1.0 - (n_np as f64).ln() / ln_n).max(0.0);
    let alpha_max = 1.0;

    // Distinct α values frequently collapse onto the same β; the memo
    // keeps each aged-program evaluation to exactly one chamber run.
    let mut memo: Memo<usize, f64> = Memo::new();
    let mut eval = |alpha: f64| -> Result<(f64, usize), GuptError> {
        let alpha = alpha.clamp(alpha_min, alpha_max);
        let beta = ((n as f64).powf(1.0 - alpha).round() as usize).clamp(1, n_np);
        let estimation = memo.get_or_try_insert(beta, || {
            Ok::<_, GuptError>(aged_block_stats(manager, program, aged, beta)?.estimation_error())
        })?;
        let noise = std::f64::consts::SQRT_2 * output_width
            / (eps_per_dim.value() * (n as f64).powf(alpha));
        Ok((estimation + noise, beta))
    };

    // Coarse grid.
    let mut best_alpha = alpha_max;
    let mut best = eval(alpha_max)?;
    for i in 0..GRID_POINTS {
        let alpha = alpha_min + (alpha_max - alpha_min) * i as f64 / (GRID_POINTS - 1) as f64;
        let candidate = eval(alpha)?;
        if candidate.0 < best.0 {
            best = candidate;
            best_alpha = alpha;
        }
    }

    // Local refinement: shrink a symmetric step around the incumbent.
    let mut step = (alpha_max - alpha_min) / (GRID_POINTS - 1) as f64;
    for _ in 0..REFINE_ROUNDS {
        step /= 2.0;
        for alpha in [best_alpha - step, best_alpha + step] {
            if !(alpha_min..=alpha_max).contains(&alpha) {
                continue;
            }
            let candidate = eval(alpha)?;
            if candidate.0 < best.0 {
                best = candidate;
                best_alpha = alpha;
            }
        }
    }

    Ok(BlockSizeChoice {
        block_size: best.1,
        predicted_error: best.0,
        alpha: best_alpha,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupt_sandbox::{ChamberPolicy, ClosureProgram};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn manager() -> ComputationManager {
        ComputationManager::new(ChamberPolicy::unbounded(), 2)
    }

    use gupt_sandbox::view::BlockView;

    fn mean_program() -> Arc<dyn BlockProgram> {
        Arc::new(ClosureProgram::new(1, |block: &BlockView| {
            vec![block.iter().map(|r| r[0]).sum::<f64>() / block.len().max(1) as f64]
        }))
    }

    fn median_program() -> Arc<dyn BlockProgram> {
        Arc::new(ClosureProgram::new(1, |block: &BlockView| {
            let mut v: Vec<f64> = block.iter().map(|r| r[0]).collect();
            v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            vec![v[v.len() / 2]]
        }))
    }

    fn skewed_rows(n: usize, seed: u64) -> Arc<RowStore> {
        let mut r = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                // Right-skewed: mostly small, occasionally large.
                let u: f64 = r.random();
                vec![if u < 0.8 { u } else { 10.0 * u }]
            })
            .collect();
        Arc::new(RowStore::from_rows(&rows))
    }

    #[test]
    fn mean_prefers_small_blocks() {
        // For a linear statistic the estimation error is ~0 at any block
        // size, so the noise term dominates and β → small (Example 3).
        let aged = skewed_rows(2000, 1);
        let choice = optimal_block_size(
            &manager(),
            &mean_program(),
            &aged,
            20_000,
            10.0,
            Epsilon::new(1.0).unwrap(),
        )
        .unwrap();
        assert!(choice.block_size <= 4, "β = {}", choice.block_size);
        assert!(choice.alpha > 0.9);
    }

    #[test]
    fn median_prefers_larger_blocks_than_mean() {
        let aged = skewed_rows(2000, 2);
        let eps = Epsilon::new(2.0).unwrap();
        let mean_choice =
            optimal_block_size(&manager(), &mean_program(), &aged, 20_000, 10.0, eps).unwrap();
        let median_choice =
            optimal_block_size(&manager(), &median_program(), &aged, 20_000, 10.0, eps).unwrap();
        assert!(
            median_choice.block_size > mean_choice.block_size,
            "median β {} !> mean β {}",
            median_choice.block_size,
            mean_choice.block_size
        );
    }

    #[test]
    fn predicted_error_is_positive_and_finite() {
        let aged = skewed_rows(500, 3);
        let choice = optimal_block_size(
            &manager(),
            &median_program(),
            &aged,
            5_000,
            10.0,
            Epsilon::new(1.0).unwrap(),
        )
        .unwrap();
        assert!(choice.predicted_error.is_finite());
        assert!(choice.predicted_error > 0.0);
        assert!(choice.block_size >= 1 && choice.block_size <= 500);
    }

    #[test]
    fn no_aged_data_error() {
        let empty = Arc::new(RowStore::from_flat(Vec::new(), 0));
        assert!(matches!(
            optimal_block_size(
                &manager(),
                &mean_program(),
                &empty,
                1000,
                1.0,
                Epsilon::new(1.0).unwrap()
            )
            .unwrap_err(),
            GuptError::NoAgedData(_)
        ));
    }

    #[test]
    fn tiny_private_dataset_rejected() {
        let aged = skewed_rows(100, 4);
        assert!(optimal_block_size(
            &manager(),
            &mean_program(),
            &aged,
            1,
            1.0,
            Epsilon::new(1.0).unwrap()
        )
        .is_err());
    }

    #[test]
    fn memoised_climb_matches_direct_evaluation() {
        // The memo must be a pure cache: the chosen point's predicted
        // error has to equal Equation 2 recomputed from scratch, bit for
        // bit, at the same (α, β).
        let aged = skewed_rows(800, 6);
        let n = 8_000;
        let width = 10.0;
        let eps = Epsilon::new(1.5).unwrap();
        let choice =
            optimal_block_size(&manager(), &median_program(), &aged, n, width, eps).unwrap();
        let direct_estimation =
            aged_block_stats(&manager(), &median_program(), &aged, choice.block_size)
                .unwrap()
                .estimation_error();
        let direct_noise =
            std::f64::consts::SQRT_2 * width / (eps.value() * (n as f64).powf(choice.alpha));
        assert_eq!(choice.predicted_error, direct_estimation + direct_noise);
    }

    #[test]
    fn block_size_never_exceeds_aged_sample() {
        // Aged sample much smaller than n: feasibility bound must hold.
        let aged = skewed_rows(50, 5);
        let choice = optimal_block_size(
            &manager(),
            &median_program(),
            &aged,
            100_000,
            10.0,
            Epsilon::new(6.0).unwrap(),
        )
        .unwrap();
        assert!(choice.block_size <= 50);
    }
}
