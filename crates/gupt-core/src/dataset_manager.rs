//! The dataset manager (§3.1): registration and per-dataset budget ledgers.
//!
//! "The dataset manager is a database that registers instances of the
//! available datasets and maintains the available privacy budget." Every
//! query the runtime executes is charged against the owning dataset's
//! [`PrivacyLedger`] *before* any computation touches the private rows —
//! this ordering is the §6.2 privacy-budget-attack defense: accounting is
//! runtime-side and fails closed.
//!
//! Registration is builder-style: a [`Dataset`] becomes a
//! [`DatasetRegistration`] carrying its lifetime budget and
//! [`Durability`], so storage configuration lands without widening
//! positional signatures:
//!
//! ```
//! use gupt_core::prelude::*;
//!
//! let mut manager = gupt_core::DatasetManager::new();
//! let dataset = Dataset::new(vec![vec![1.0], vec![2.0]]).unwrap();
//! manager
//!     .add("ages", dataset.builder().budget(Epsilon::new(2.0).unwrap()))
//!     .unwrap();
//! ```
//!
//! With [`Durability::Durable`], every successful charge is logged to a
//! write-ahead log *before* it is granted, and registration replays any
//! existing state — see [`crate::storage`].

use crate::dataset::Dataset;
use crate::error::GuptError;
use crate::principal::{ExhaustedPolicy, PrincipalState, PrincipalTable};
use crate::storage::{
    CacheRecord, Durability, LedgerStore, PrincipalBooks, RecoveredLedger, StorageStats,
};
use gupt_dp::{DpError, Epsilon, PrivacyLedger};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A pending registration: dataset + lifetime budget + durability +
/// principal quotas.
///
/// Built with [`Dataset::builder`] and consumed by
/// [`DatasetManager::add`] (or [`crate::GuptRuntimeBuilder::dataset`]).
#[derive(Debug)]
pub struct DatasetRegistration {
    dataset: Dataset,
    budget: Option<Epsilon>,
    durability: Durability,
    principals: Vec<(String, f64)>,
    exhausted_policy: ExhaustedPolicy,
}

impl DatasetRegistration {
    /// Starts a registration for `dataset` (no budget yet, ephemeral).
    pub fn new(dataset: Dataset) -> Self {
        DatasetRegistration {
            dataset,
            budget: None,
            durability: Durability::Ephemeral,
            principals: Vec::new(),
            exhausted_policy: ExhaustedPolicy::default(),
        }
    }

    /// Sets the lifetime privacy budget (required).
    pub fn budget(mut self, total: Epsilon) -> Self {
        self.budget = Some(total);
        self
    }

    /// Sets how the ledger is persisted (default: ephemeral).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Declares a principal with an ε quota carved from the dataset
    /// budget. Call once per tenant; quotas are admission bookkeeping on
    /// top of the lifetime ledger (see [`crate::principal`]).
    pub fn principal(mut self, name: impl Into<String>, quota: f64) -> Self {
        self.principals.push((name.into(), quota));
        self
    }

    /// Sets the policy applied when a principal exhausts its quota
    /// (default: [`ExhaustedPolicy::HardStop`]).
    pub fn exhausted_policy(mut self, policy: ExhaustedPolicy) -> Self {
        self.exhausted_policy = policy;
        self
    }
}

impl Dataset {
    /// Starts a builder-style registration of this dataset:
    /// `dataset.builder().budget(..).durability(..)`.
    pub fn builder(self) -> DatasetRegistration {
        DatasetRegistration::new(self)
    }
}

/// Inspectable ledger state for one dataset, as the runtime reports it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerState {
    /// Lifetime budget ε.
    pub total: f64,
    /// ε spent (may exceed `total` after a conservative recovery).
    pub spent: f64,
    /// ε remaining (clamped at zero).
    pub remaining: f64,
    /// Successful charges, including recovered ones.
    pub queries: usize,
    /// Whether the ledger is WAL-backed.
    pub durable: bool,
}

/// A registered dataset together with its lifetime budget ledger and,
/// when durable, the write side of its on-disk state.
#[derive(Debug)]
pub struct DatasetEntry {
    dataset: Dataset,
    ledger: PrivacyLedger,
    /// The WAL behind a mutex: the holder serialises check-afford → WAL
    /// append → in-memory debit, so the on-disk record order matches the
    /// ledger's serial order exactly.
    store: Option<Mutex<LedgerStore>>,
    recovered: Option<RecoveredLedger>,
    /// Content hash of the registered data, fixed at registration.
    /// Cached answers are keyed under it: re-registering changed rows
    /// produces a new epoch, so stale WAL cache records are dropped at
    /// recovery instead of replaying answers about data that no longer
    /// exists.
    epoch: u64,
    /// Per-principal quota books. Always present; empty when the
    /// registration declared no principals (then only unattributed
    /// charges are possible).
    principals: PrincipalTable,
}

impl DatasetEntry {
    /// The dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The registration epoch: a content hash of the registered rows
    /// (main and aged stores, dimension, group column). Two
    /// registrations of identical data share an epoch; any change to the
    /// data changes it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Journals one released answer to the durable WAL so a restarted
    /// process recovers its warm cache. Ephemeral entries keep the cache
    /// in memory only — this is a no-op for them.
    pub(crate) fn journal_cache(&self, rec: &CacheRecord) -> Result<(), GuptError> {
        match &self.store {
            None => Ok(()),
            Some(store) => store
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .append_cache_record(rec),
        }
    }

    /// The budget ledger (read-only view; charge via
    /// [`DatasetEntry::charge`] so durable entries hit the WAL).
    pub fn ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }

    /// What recovery replayed when this entry was registered (durable
    /// entries only).
    pub fn recovery(&self) -> Option<&RecoveredLedger> {
        self.recovered.as_ref()
    }

    /// Persistence counters (durable entries only).
    pub fn storage_stats(&self) -> Option<StorageStats> {
        self.store
            .as_ref()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).stats())
    }

    /// Point-in-time ledger state.
    pub fn ledger_state(&self) -> LedgerState {
        LedgerState {
            total: self.ledger.total(),
            spent: self.ledger.spent(),
            remaining: self.ledger.remaining(),
            queries: self.ledger.query_count(),
            durable: self.store.is_some(),
        }
    }

    /// The per-principal quota table (empty for datasets registered
    /// without principals).
    pub fn principals(&self) -> &PrincipalTable {
        &self.principals
    }

    /// Point-in-time view of every principal's quota books, sorted by
    /// name.
    pub fn principal_states(&self) -> Vec<PrincipalState> {
        self.principals.states()
    }

    /// Atomically debits `eps`, writing ahead to the WAL first when the
    /// entry is durable.
    ///
    /// Order of operations for a durable entry (under the store lock):
    /// affordability check → WAL append (+ fsync per policy) → in-memory
    /// debit. A charge that fails at the WAL is **not granted** and the
    /// store poisons itself; a charge that was durably appended but lost
    /// before the in-memory debit (process death) is replayed at
    /// recovery — the books only ever err toward *more* spent.
    pub fn charge(&self, eps: Epsilon) -> Result<(), GuptError> {
        self.charge_as(None, eps)
    }

    /// Like [`DatasetEntry::charge`], but optionally attributes the debit
    /// to a registered principal.
    ///
    /// With a principal, the quota check and the dataset debit happen
    /// under the principal-books lock, so a refused quota never touches
    /// the dataset ledger and a granted charge commits to both books or
    /// neither. Lock order is always principal books → store; the
    /// unattributed path reads a books snapshot *before* taking the store
    /// lock for the same reason.
    pub fn charge_as(&self, principal: Option<&str>, eps: Epsilon) -> Result<(), GuptError> {
        match principal {
            Some(name) => self.principals.charge_with(name, eps.value(), |books| {
                self.debit_dataset(name, eps, books)
            }),
            None => {
                let books = self.principals.spent_books();
                self.debit_dataset_unattributed(eps, &books)
            }
        }
    }

    /// Debits the dataset ledger for a principal-attributed charge. The
    /// WAL record carries the attribution (tag `0x03`), so dataset debit
    /// and principal debit are one physical record that recovery replays
    /// into both books. `books` already includes the in-flight charge
    /// (see [`PrincipalTable::charge_with`]) — by compaction time the
    /// record is in the WAL, so the snapshot must count it.
    fn debit_dataset(
        &self,
        principal: &str,
        eps: Epsilon,
        books: &BTreeMap<String, PrincipalBooks>,
    ) -> Result<(), GuptError> {
        match &self.store {
            None => self.ledger.charge(eps).map_err(GuptError::Dp),
            Some(store) => {
                let mut store = store.lock().unwrap_or_else(|p| p.into_inner());
                if !self.ledger.can_afford(eps) {
                    return Err(GuptError::Dp(DpError::BudgetExhausted {
                        requested: eps.value(),
                        remaining: self.ledger.remaining(),
                    }));
                }
                store.append_principal_charge(principal, eps.value())?;
                self.ledger.charge(eps).map_err(GuptError::Dp)?;
                store.maybe_compact(
                    self.ledger.total(),
                    self.ledger.spent(),
                    self.ledger.query_count() as u64,
                    books,
                )
            }
        }
    }

    /// Debits the dataset ledger without attribution (plain tag `0x01`
    /// WAL record). `books` is a pre-lock snapshot used only if this
    /// charge triggers compaction.
    fn debit_dataset_unattributed(
        &self,
        eps: Epsilon,
        books: &BTreeMap<String, PrincipalBooks>,
    ) -> Result<(), GuptError> {
        match &self.store {
            None => self.ledger.charge(eps).map_err(GuptError::Dp),
            Some(store) => {
                let mut store = store.lock().unwrap_or_else(|p| p.into_inner());
                if !self.ledger.can_afford(eps) {
                    return Err(GuptError::Dp(DpError::BudgetExhausted {
                        requested: eps.value(),
                        remaining: self.ledger.remaining(),
                    }));
                }
                store.append_charge(eps.value())?;
                self.ledger.charge(eps).map_err(GuptError::Dp)?;
                store.maybe_compact(
                    self.ledger.total(),
                    self.ledger.spent(),
                    self.ledger.query_count() as u64,
                    books,
                )
            }
        }
    }
}

/// FNV-1a 64 content hash of a dataset: dimension, row count, every row
/// bit of the main and aged stores, and the group column. Deterministic
/// across processes (no `DefaultHasher`), so a restarted service
/// computes the same epoch for the same registered bytes.
fn dataset_epoch(dataset: &Dataset) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    write(&(dataset.dimension() as u64).to_le_bytes());
    write(&(dataset.len() as u64).to_le_bytes());
    for &v in dataset.store().flat() {
        write(&v.to_bits().to_le_bytes());
    }
    // Sentinel-coded group column: u64::MAX means "none declared".
    let group = dataset.group_column().map_or(u64::MAX, |c| c as u64);
    write(&group.to_le_bytes());
    let aged = dataset.aged_store();
    write(&(aged.len() as u64).to_le_bytes());
    for &v in aged.flat() {
        write(&v.to_bits().to_le_bytes());
    }
    h
}

/// Registry of datasets available to analysts.
#[derive(Debug, Default)]
pub struct DatasetManager {
    entries: BTreeMap<String, DatasetEntry>,
}

impl DatasetManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        DatasetManager::default()
    }

    /// Registers a dataset from a builder-style [`DatasetRegistration`].
    ///
    /// For a durable registration this opens (or creates) the dataset's
    /// on-disk state, truncates any torn WAL tail and replays snapshot +
    /// WAL into the ledger — the registration's budget is authoritative
    /// for `total`; the recovered spend and query count carry over.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        registration: DatasetRegistration,
    ) -> Result<(), GuptError> {
        let name = name.into();
        if self.entries.contains_key(&name) {
            return Err(GuptError::DatasetExists(name));
        }
        let budget = registration.budget.ok_or_else(|| {
            GuptError::InvalidDataset(format!(
                "registration of {name:?} is missing a lifetime budget; \
                 call .budget(..) on the builder"
            ))
        })?;
        let (ledger, store, recovered) = match registration.durability {
            Durability::Ephemeral => (PrivacyLedger::new(budget), None, None),
            Durability::Durable(config) => {
                let (store, recovered) = LedgerStore::open(&name, &config)?;
                let ledger =
                    PrivacyLedger::restore(budget, recovered.spent, recovered.queries as usize);
                (ledger, Some(Mutex::new(store)), Some(recovered))
            }
        };
        let principals = PrincipalTable::new(registration.exhausted_policy);
        let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (pname, quota) in &registration.principals {
            if !seen.insert(pname.as_str()) {
                return Err(GuptError::InvalidSpec(format!(
                    "principal {pname:?} declared twice for dataset {name:?}"
                )));
            }
            principals.register(pname, *quota)?;
        }
        // Recovered spend re-attaches to its principal even if the new
        // registration no longer declares it: the history must never
        // under-report, so undeclared recovered principals keep quota 0.
        if let Some(rec) = &recovered {
            for (pname, books) in &rec.principals {
                principals.absorb_recovered(pname, books.spent, books.queries);
            }
        }
        let epoch = dataset_epoch(&registration.dataset);
        self.entries.insert(
            name,
            DatasetEntry {
                dataset: registration.dataset,
                ledger,
                store,
                recovered,
                epoch,
                principals,
            },
        );
        Ok(())
    }

    /// Registers `dataset` under `name` with a lifetime privacy budget.
    #[deprecated(
        since = "0.4.0",
        note = "use `manager.add(name, dataset.builder().budget(total))` — the builder \
                also carries the `Durability` storage configuration"
    )]
    pub fn register(
        &mut self,
        name: impl Into<String>,
        dataset: Dataset,
        total_budget: Epsilon,
    ) -> Result<(), GuptError> {
        self.add(name, dataset.builder().budget(total_budget))
    }

    /// Looks up a dataset entry.
    pub fn get(&self, name: &str) -> Result<&DatasetEntry, GuptError> {
        self.entries
            .get(name)
            .ok_or_else(|| GuptError::DatasetNotFound(name.to_string()))
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no datasets are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FsyncPolicy, StorageConfig};

    fn dataset(n: usize) -> Dataset {
        Dataset::new((0..n).map(|i| vec![i as f64]).collect()).unwrap()
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("gupt_manager_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn register_and_lookup() {
        let mut m = DatasetManager::new();
        m.add("ages", dataset(10).builder().budget(eps(2.0)))
            .unwrap();
        let entry = m.get("ages").unwrap();
        assert_eq!(entry.dataset().len(), 10);
        assert_eq!(entry.ledger().total(), 2.0);
        assert_eq!(m.names(), vec!["ages"]);
        assert_eq!(m.len(), 1);
        let state = entry.ledger_state();
        assert!(!state.durable);
        assert_eq!(state.remaining, 2.0);
    }

    #[test]
    fn deprecated_register_forwards_to_add() {
        let mut m = DatasetManager::new();
        #[allow(deprecated)]
        m.register("x", dataset(5), eps(1.0)).unwrap();
        assert_eq!(m.get("x").unwrap().ledger().total(), 1.0);
    }

    #[test]
    fn registration_requires_budget() {
        let mut m = DatasetManager::new();
        assert!(matches!(
            m.add("x", dataset(5).builder()).unwrap_err(),
            GuptError::InvalidDataset(_)
        ));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut m = DatasetManager::new();
        m.add("x", dataset(5).builder().budget(eps(1.0))).unwrap();
        assert!(matches!(
            m.add("x", dataset(5).builder().budget(eps(1.0)))
                .unwrap_err(),
            GuptError::DatasetExists(_)
        ));
    }

    #[test]
    fn missing_dataset_error() {
        let m = DatasetManager::new();
        assert!(matches!(
            m.get("nope").unwrap_err(),
            GuptError::DatasetNotFound(_)
        ));
        assert!(m.is_empty());
    }

    #[test]
    fn ledger_charges_are_per_dataset() {
        let mut m = DatasetManager::new();
        m.add("a", dataset(5).builder().budget(eps(1.0))).unwrap();
        m.add("b", dataset(5).builder().budget(eps(1.0))).unwrap();
        m.get("a").unwrap().charge(eps(0.7)).unwrap();
        assert!((m.get("a").unwrap().ledger().remaining() - 0.3).abs() < 1e-12);
        assert_eq!(m.get("b").unwrap().ledger().remaining(), 1.0);
    }

    #[test]
    fn names_sorted() {
        let mut m = DatasetManager::new();
        m.add("zeta", dataset(2).builder().budget(eps(1.0)))
            .unwrap();
        m.add("alpha", dataset(2).builder().budget(eps(1.0)))
            .unwrap();
        assert_eq!(m.names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn durable_charges_survive_re_registration() {
        let dir = tmp_dir("survive");
        let durable = || Durability::Durable(StorageConfig::new(&dir).fsync(FsyncPolicy::Always));
        {
            let mut m = DatasetManager::new();
            m.add(
                "d",
                dataset(5).builder().budget(eps(2.0)).durability(durable()),
            )
            .unwrap();
            let entry = m.get("d").unwrap();
            entry.charge(eps(0.5)).unwrap();
            entry.charge(eps(0.25)).unwrap();
            let stats = entry.storage_stats().unwrap();
            assert_eq!(stats.records_written, 2);
            assert!(!stats.poisoned);
        }
        // "Restart": a fresh manager over the same state directory.
        let mut m = DatasetManager::new();
        m.add(
            "d",
            dataset(5).builder().budget(eps(2.0)).durability(durable()),
        )
        .unwrap();
        let entry = m.get("d").unwrap();
        let state = entry.ledger_state();
        assert!(state.durable);
        assert!((state.spent - 0.75).abs() < 1e-12);
        assert_eq!(state.queries, 2);
        let recovery = entry.recovery().expect("durable entry records recovery");
        assert_eq!(recovery.wal_records, 2);
        // The restored ledger keeps enforcing the lifetime budget.
        assert!(entry.charge(eps(2.0)).is_err());
        entry.charge(eps(1.0)).unwrap();
    }

    #[test]
    fn epoch_is_a_content_hash() {
        let mut m = DatasetManager::new();
        m.add("a", dataset(10).builder().budget(eps(1.0))).unwrap();
        m.add("b", dataset(10).builder().budget(eps(1.0))).unwrap();
        // Identical contents → identical epoch, regardless of name.
        assert_eq!(m.get("a").unwrap().epoch(), m.get("b").unwrap().epoch());

        // Any content change → different epoch.
        let mut rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        rows[3][0] += 1e-9;
        let mut m2 = DatasetManager::new();
        m2.add("a", Dataset::new(rows).unwrap().builder().budget(eps(1.0)))
            .unwrap();
        assert_ne!(m.get("a").unwrap().epoch(), m2.get("a").unwrap().epoch());
    }

    #[test]
    fn epoch_sees_group_column_and_aged_view() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 10) as f64, i as f64]).collect();
        let plain = Dataset::new(rows.clone()).unwrap();
        let grouped = Dataset::new(rows.clone())
            .unwrap()
            .with_group_column(0)
            .unwrap();
        let aged = Dataset::new(rows).unwrap().with_aged_fraction(0.2).unwrap();
        let mut m = DatasetManager::new();
        m.add("p", plain.builder().budget(eps(1.0))).unwrap();
        m.add("g", grouped.builder().budget(eps(1.0))).unwrap();
        m.add("a", aged.builder().budget(eps(1.0))).unwrap();
        let (p, g, a) = (
            m.get("p").unwrap().epoch(),
            m.get("g").unwrap().epoch(),
            m.get("a").unwrap().epoch(),
        );
        assert_ne!(p, g);
        assert_ne!(p, a);
        assert_ne!(g, a);
    }

    #[test]
    fn ephemeral_entry_has_no_storage() {
        let mut m = DatasetManager::new();
        m.add("e", dataset(3).builder().budget(eps(1.0))).unwrap();
        let entry = m.get("e").unwrap();
        assert!(entry.storage_stats().is_none());
        assert!(entry.recovery().is_none());
    }

    #[test]
    fn principal_charges_debit_both_books() {
        let mut m = DatasetManager::new();
        m.add(
            "d",
            dataset(5)
                .builder()
                .budget(eps(2.0))
                .principal("alice", 1.5)
                .principal("bob", 0.5),
        )
        .unwrap();
        let entry = m.get("d").unwrap();
        entry.charge_as(Some("alice"), eps(0.5)).unwrap();
        entry.charge_as(Some("bob"), eps(0.25)).unwrap();
        let alice = entry.principals().state("alice").unwrap();
        assert!((alice.spent - 0.5).abs() < 1e-12);
        assert_eq!(alice.queries, 1);
        assert!((entry.ledger().spent() - 0.75).abs() < 1e-12);
        // Ledger spent equals the sum of principal debits: zero drift.
        let total: f64 = entry.principal_states().iter().map(|s| s.spent).sum();
        assert!((total - entry.ledger().spent()).abs() < 1e-12);
    }

    #[test]
    fn quota_refusal_leaves_ledger_untouched() {
        let mut m = DatasetManager::new();
        m.add(
            "d",
            dataset(5)
                .builder()
                .budget(eps(10.0))
                .principal("alice", 0.5),
        )
        .unwrap();
        let entry = m.get("d").unwrap();
        let err = entry.charge_as(Some("alice"), eps(1.0)).unwrap_err();
        assert!(matches!(err, GuptError::QuotaExhausted { .. }));
        assert_eq!(entry.ledger().spent(), 0.0);
        let err = entry.charge_as(Some("mallory"), eps(0.1)).unwrap_err();
        assert!(matches!(err, GuptError::UnknownPrincipal(_)));
        assert_eq!(entry.ledger().spent(), 0.0);
    }

    #[test]
    fn ledger_exhaustion_leaves_principal_books_untouched() {
        let mut m = DatasetManager::new();
        m.add(
            "d",
            dataset(5)
                .builder()
                .budget(eps(0.5))
                .principal("alice", 5.0),
        )
        .unwrap();
        let entry = m.get("d").unwrap();
        // Quota admits it, but the dataset ledger cannot afford it: the
        // failed dataset debit must not attribute to alice either.
        let err = entry.charge_as(Some("alice"), eps(1.0)).unwrap_err();
        assert!(matches!(
            err,
            GuptError::Dp(DpError::BudgetExhausted { .. })
        ));
        let alice = entry.principals().state("alice").unwrap();
        assert_eq!(alice.spent, 0.0);
        assert_eq!(alice.queries, 0);
    }

    #[test]
    fn duplicate_principal_declaration_rejected() {
        let mut m = DatasetManager::new();
        let err = m
            .add(
                "d",
                dataset(5)
                    .builder()
                    .budget(eps(1.0))
                    .principal("alice", 0.5)
                    .principal("alice", 0.25),
            )
            .unwrap_err();
        assert!(matches!(err, GuptError::InvalidSpec(_)));
        assert!(err.to_string().contains("alice"));
    }

    #[test]
    fn durable_principal_books_survive_restart() {
        let dir = tmp_dir("principal_survive");
        let durable = || Durability::Durable(StorageConfig::new(&dir).fsync(FsyncPolicy::Always));
        let registration = |quota_bob: f64| {
            dataset(5)
                .builder()
                .budget(eps(4.0))
                .durability(durable())
                .principal("alice", 2.0)
                .principal("bob", quota_bob)
        };
        {
            let mut m = DatasetManager::new();
            m.add("d", registration(1.0)).unwrap();
            let entry = m.get("d").unwrap();
            entry.charge_as(Some("alice"), eps(0.5)).unwrap();
            entry.charge_as(Some("alice"), eps(0.25)).unwrap();
            entry.charge_as(Some("bob"), eps(0.125)).unwrap();
            entry.charge(eps(0.0625)).unwrap(); // unattributed
        }
        let mut m = DatasetManager::new();
        m.add("d", registration(1.0)).unwrap();
        let entry = m.get("d").unwrap();
        let state = entry.ledger_state();
        assert!((state.spent - 0.9375).abs() < 1e-12);
        assert_eq!(state.queries, 4);
        let alice = entry.principals().state("alice").unwrap();
        assert!((alice.spent - 0.75).abs() < 1e-12);
        assert_eq!(alice.queries, 2);
        assert_eq!(alice.quota, 2.0);
        let bob = entry.principals().state("bob").unwrap();
        assert!((bob.spent - 0.125).abs() < 1e-12);
        // Recovered spend keeps counting against the quota after restart.
        assert!(matches!(
            entry.charge_as(Some("bob"), eps(0.9)).unwrap_err(),
            GuptError::QuotaExhausted { .. }
        ));
    }

    #[test]
    fn recovered_principal_without_declaration_keeps_history() {
        let dir = tmp_dir("principal_undeclared");
        let durable = || Durability::Durable(StorageConfig::new(&dir).fsync(FsyncPolicy::Always));
        {
            let mut m = DatasetManager::new();
            m.add(
                "d",
                dataset(5)
                    .builder()
                    .budget(eps(2.0))
                    .durability(durable())
                    .principal("alice", 1.0),
            )
            .unwrap();
            m.get("d")
                .unwrap()
                .charge_as(Some("alice"), eps(0.5))
                .unwrap();
        }
        // Restart without declaring alice: her spend survives with quota
        // 0, so further charges are refused but history is intact.
        let mut m = DatasetManager::new();
        m.add(
            "d",
            dataset(5).builder().budget(eps(2.0)).durability(durable()),
        )
        .unwrap();
        let entry = m.get("d").unwrap();
        let alice = entry.principals().state("alice").unwrap();
        assert!((alice.spent - 0.5).abs() < 1e-12);
        assert_eq!(alice.quota, 0.0);
        assert!(matches!(
            entry.charge_as(Some("alice"), eps(0.1)).unwrap_err(),
            GuptError::QuotaExhausted { .. }
        ));
    }
}
