//! The dataset manager (§3.1): registration and per-dataset budget ledgers.
//!
//! "The dataset manager is a database that registers instances of the
//! available datasets and maintains the available privacy budget." Every
//! query the runtime executes is charged against the owning dataset's
//! [`PrivacyLedger`] *before* any computation touches the private rows —
//! this ordering is the §6.2 privacy-budget-attack defense: accounting is
//! runtime-side and fails closed.

use crate::dataset::Dataset;
use crate::error::GuptError;
use gupt_dp::{Epsilon, PrivacyLedger};
use std::collections::BTreeMap;

/// A registered dataset together with its lifetime budget ledger.
#[derive(Debug)]
pub struct DatasetEntry {
    dataset: Dataset,
    ledger: PrivacyLedger,
}

impl DatasetEntry {
    /// The dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The budget ledger.
    pub fn ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }
}

/// Registry of datasets available to analysts.
#[derive(Debug, Default)]
pub struct DatasetManager {
    entries: BTreeMap<String, DatasetEntry>,
}

impl DatasetManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        DatasetManager::default()
    }

    /// Registers `dataset` under `name` with a lifetime privacy budget.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        dataset: Dataset,
        total_budget: Epsilon,
    ) -> Result<(), GuptError> {
        let name = name.into();
        if self.entries.contains_key(&name) {
            return Err(GuptError::DatasetExists(name));
        }
        self.entries.insert(
            name,
            DatasetEntry {
                dataset,
                ledger: PrivacyLedger::new(total_budget),
            },
        );
        Ok(())
    }

    /// Looks up a dataset entry.
    pub fn get(&self, name: &str) -> Result<&DatasetEntry, GuptError> {
        self.entries
            .get(name)
            .ok_or_else(|| GuptError::DatasetNotFound(name.to_string()))
    }

    /// Registered dataset names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no datasets are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        Dataset::new((0..n).map(|i| vec![i as f64]).collect()).unwrap()
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut m = DatasetManager::new();
        m.register("ages", dataset(10), eps(2.0)).unwrap();
        let entry = m.get("ages").unwrap();
        assert_eq!(entry.dataset().len(), 10);
        assert_eq!(entry.ledger().total(), 2.0);
        assert_eq!(m.names(), vec!["ages"]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut m = DatasetManager::new();
        m.register("x", dataset(5), eps(1.0)).unwrap();
        assert!(matches!(
            m.register("x", dataset(5), eps(1.0)).unwrap_err(),
            GuptError::DatasetExists(_)
        ));
    }

    #[test]
    fn missing_dataset_error() {
        let m = DatasetManager::new();
        assert!(matches!(
            m.get("nope").unwrap_err(),
            GuptError::DatasetNotFound(_)
        ));
        assert!(m.is_empty());
    }

    #[test]
    fn ledger_charges_are_per_dataset() {
        let mut m = DatasetManager::new();
        m.register("a", dataset(5), eps(1.0)).unwrap();
        m.register("b", dataset(5), eps(1.0)).unwrap();
        m.get("a").unwrap().ledger().charge(eps(0.7)).unwrap();
        assert!((m.get("a").unwrap().ledger().remaining() - 0.3).abs() < 1e-12);
        assert_eq!(m.get("b").unwrap().ledger().remaining(), 1.0);
    }

    #[test]
    fn names_sorted() {
        let mut m = DatasetManager::new();
        m.register("zeta", dataset(2), eps(1.0)).unwrap();
        m.register("alpha", dataset(2), eps(1.0)).unwrap();
        assert_eq!(m.names(), vec!["alpha", "zeta"]);
    }
}
