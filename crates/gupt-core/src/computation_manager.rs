//! The computation manager (§3.1, §6).
//!
//! In the paper the computation manager is split into a *server*
//! component that talks to the analyst and a *client* component on each
//! cluster node that instantiates chambers, pipes block data in and
//! forwards outputs back through a trusted agent. This module is that
//! orchestration layer: it owns the chamber pool, materialises blocks
//! into the chambers and collects the per-block reports, from which the
//! runtime computes the DP aggregate. The untrusted program never
//! communicates with anything but its own chamber.
//!
//! Blocks arrive as zero-copy [`BlockView`]s onto the registration-time
//! row store; shipping one to a chamber is two `Arc` bumps, so a query's
//! data-plane allocation is O(total indices) regardless of γ or the
//! dataset's byte size.

use gupt_sandbox::view::{BlockView, RowStore};
use gupt_sandbox::{
    BlockProgram, ChamberOutcome, ChamberPolicy, ChamberPool, ChamberReport, ExecutionPolicy,
    PoolTrace,
};
use std::sync::Arc;
use std::time::Duration;

/// Summary of how a batch of chamber executions went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionSummary {
    /// Blocks whose program completed normally.
    pub completed: usize,
    /// Blocks killed for exceeding the execution budget.
    pub timed_out: usize,
    /// Blocks whose program panicked.
    pub panicked: usize,
}

impl ExecutionSummary {
    /// Builds a summary from chamber reports.
    pub fn from_reports(reports: &[ChamberReport]) -> Self {
        let mut summary = ExecutionSummary::default();
        for r in reports {
            match r.outcome {
                ChamberOutcome::Completed => summary.completed += 1,
                ChamberOutcome::TimedOut => summary.timed_out += 1,
                ChamberOutcome::Panicked => summary.panicked += 1,
            }
        }
        summary
    }

    /// Total number of block executions.
    pub fn total(&self) -> usize {
        self.completed + self.timed_out + self.panicked
    }
}

/// Orchestrates chamber execution for the runtime.
#[derive(Debug, Clone)]
pub struct ComputationManager {
    pool: ChamberPool,
}

impl ComputationManager {
    /// Creates a manager whose chambers run under `policy` with `workers`
    /// parallel threads.
    pub fn new(policy: ChamberPolicy, workers: usize) -> Self {
        ComputationManager {
            pool: ChamberPool::new(policy, workers),
        }
    }

    /// Creates a manager scheduled by an explicit [`ExecutionPolicy`] —
    /// the first-class path behind `GuptRuntimeBuilder::execution`.
    pub fn with_execution(policy: ChamberPolicy, exec: ExecutionPolicy) -> Self {
        ComputationManager {
            pool: ChamberPool::with_execution(policy, exec),
        }
    }

    /// Creates a manager sized to the machine's parallelism.
    pub fn with_default_parallelism(policy: ChamberPolicy) -> Self {
        ComputationManager {
            pool: ChamberPool::with_default_parallelism(policy),
        }
    }

    /// Number of parallel chamber workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The chamber policy the pool runs under.
    pub fn policy(&self) -> &ChamberPolicy {
        self.pool.policy()
    }

    /// The execution policy scheduling the chamber pool.
    pub fn execution(&self) -> &ExecutionPolicy {
        self.pool.execution()
    }

    /// Runs `program` on every block in its own chamber; report order
    /// matches block order. The [`PoolTrace`] rides along for operator
    /// telemetry — callers that don't need it drop it.
    pub fn execute_blocks(
        &self,
        program: &Arc<dyn BlockProgram>,
        views: Vec<BlockView>,
    ) -> (Vec<ChamberReport>, PoolTrace) {
        self.pool.run_all_traced(program, views)
    }

    /// Like [`ComputationManager::execute_blocks`], but when `cap` is
    /// set *and* the pool's policy has no execution budget of its own,
    /// chambers run under the pool policy with `cap` as the kill bound.
    /// An explicitly configured budget always wins — the owner's §6.2
    /// timing-attack bound is not loosened by a lenient query deadline.
    pub fn execute_blocks_capped(
        &self,
        program: &Arc<dyn BlockProgram>,
        views: Vec<BlockView>,
        cap: Option<Duration>,
    ) -> (Vec<ChamberReport>, PoolTrace) {
        self.execute_blocks_planned(program, views, cap, None, None)
    }

    /// The full-featured dispatch behind the runtime's query path:
    /// optional deadline cap (same precedence as
    /// [`ComputationManager::execute_blocks_capped`]), optional
    /// per-query [`ExecutionPolicy`] override (a `QuerySpec::execution`
    /// or a service worker-budget cap), and optional per-query seed
    /// base from which chamber `i`'s RNG stream is split *before*
    /// fan-out, keeping answers bit-identical at any thread count.
    pub fn execute_blocks_planned(
        &self,
        program: &Arc<dyn BlockProgram>,
        views: Vec<BlockView>,
        cap: Option<Duration>,
        exec: Option<&ExecutionPolicy>,
        seed_base: Option<u64>,
    ) -> (Vec<ChamberReport>, PoolTrace) {
        let mut pool = match exec {
            Some(exec) if exec != self.pool.execution() => {
                self.pool.with_execution_policy(exec.clone())
            }
            _ => self.pool.clone(),
        };
        if let Some(cap) = cap {
            // An explicitly configured chamber budget always wins — the
            // owner's §6.2 timing-attack bound is not loosened by a
            // lenient query deadline.
            if pool.policy().execution_budget.is_none() {
                let policy = pool.policy().clone().with_execution_budget(cap);
                pool = pool.with_policy(policy);
            }
        }
        pool.run_all_traced_seeded(program, views, seed_base)
    }

    /// Runs `program` once over an entire row store (used on aged,
    /// non-private data by the estimators, and by non-private baselines).
    /// The full-table view is as cheap as any block view.
    pub fn execute_full(
        &self,
        program: &Arc<dyn BlockProgram>,
        store: &Arc<RowStore>,
    ) -> ChamberReport {
        let view = BlockView::full(Arc::clone(store));
        let (mut reports, _) = self.pool.run_all_traced(program, vec![view]);
        reports.pop().expect("pool returns one report per block")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gupt_sandbox::ClosureProgram;

    fn view(rows: &[Vec<f64>]) -> BlockView {
        BlockView::from_rows(rows)
    }

    fn mean_program() -> Arc<dyn BlockProgram> {
        Arc::new(ClosureProgram::new(1, |block: &BlockView| {
            if block.is_empty() {
                return vec![0.0];
            }
            vec![block.iter().map(|r| r[0]).sum::<f64>() / block.len() as f64]
        }))
    }

    #[test]
    fn executes_blocks_in_order() {
        let manager = ComputationManager::new(ChamberPolicy::unbounded(), 4);
        let blocks: Vec<BlockView> = (0..10)
            .map(|b| view(&(0..5).map(|_| vec![b as f64]).collect::<Vec<_>>()))
            .collect();
        let (reports, trace) = manager.execute_blocks(&mean_program(), blocks);
        for (b, r) in reports.iter().enumerate() {
            assert_eq!(r.output, vec![b as f64]);
        }
        assert!(trace.workers_used >= 1);
    }

    #[test]
    fn execute_full_runs_whole_table() {
        let manager = ComputationManager::new(ChamberPolicy::unbounded(), 2);
        let rows: Vec<Vec<f64>> = (0..=10).map(|i| vec![i as f64]).collect();
        let store = Arc::new(RowStore::from_rows(&rows));
        let report = manager.execute_full(&mean_program(), &store);
        assert_eq!(report.output, vec![5.0]);
    }

    #[test]
    fn summary_counts_outcomes() {
        let manager = ComputationManager::new(ChamberPolicy::unbounded(), 2);
        let picky: Arc<dyn BlockProgram> = Arc::new(ClosureProgram::new(1, |b: &BlockView| {
            assert!(b.row(0)[0] >= 0.0);
            vec![b.row(0)[0]]
        }));
        let blocks = vec![view(&[vec![1.0]]), view(&[vec![-1.0]]), view(&[vec![3.0]])];
        let (reports, _) = manager.execute_blocks(&picky, blocks);
        let summary = ExecutionSummary::from_reports(&reports);
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.panicked, 1);
        assert_eq!(summary.timed_out, 0);
        assert_eq!(summary.total(), 3);
    }

    #[test]
    fn capped_execution_kills_overrunning_blocks() {
        let manager = ComputationManager::new(ChamberPolicy::unbounded(), 2);
        let slow: Arc<dyn BlockProgram> = Arc::new(ClosureProgram::new(1, |_: &BlockView| {
            std::thread::sleep(Duration::from_secs(5));
            vec![1.0]
        }));
        let (reports, _) = manager.execute_blocks_capped(
            &slow,
            vec![view(&[vec![1.0]])],
            Some(Duration::from_millis(20)),
        );
        assert_eq!(reports[0].outcome, ChamberOutcome::TimedOut);
    }

    #[test]
    fn explicit_policy_budget_wins_over_cap() {
        // The owner's 5 s bound is not overridden by a 1 ms cap request:
        // a program that sleeps 30 ms still completes under the
        // configured policy even though it would blow the cap.
        let policy = ChamberPolicy::bounded(Duration::from_secs(5), 0.0).without_padding();
        let manager = ComputationManager::new(policy, 2);
        let napper: Arc<dyn BlockProgram> = Arc::new(ClosureProgram::new(1, |_: &BlockView| {
            std::thread::sleep(Duration::from_millis(30));
            vec![1.0]
        }));
        let (reports, _) = manager.execute_blocks_capped(
            &napper,
            vec![view(&[vec![3.0]])],
            Some(Duration::from_millis(1)),
        );
        assert_eq!(reports[0].outcome, ChamberOutcome::Completed);
    }

    #[test]
    fn default_parallelism() {
        let manager = ComputationManager::with_default_parallelism(ChamberPolicy::unbounded());
        assert!(manager.workers() >= 1);
    }

    #[test]
    fn explicit_execution_policy_sizes_the_pool() {
        let manager = ComputationManager::with_execution(
            ChamberPolicy::unbounded(),
            ExecutionPolicy::parallel(3),
        );
        assert_eq!(manager.workers(), 3);
        assert_eq!(manager.execution().threads, 3);
    }

    #[test]
    fn per_query_execution_override_applies() {
        let manager = ComputationManager::with_execution(
            ChamberPolicy::unbounded(),
            ExecutionPolicy::sequential(),
        );
        let blocks: Vec<BlockView> = (0..6).map(|b| view(&[vec![b as f64]])).collect();
        let (reports, trace) = manager.execute_blocks_planned(
            &mean_program(),
            blocks,
            None,
            Some(&ExecutionPolicy::parallel(3)),
            None,
        );
        assert_eq!(trace.workers_used, 3);
        for (b, r) in reports.iter().enumerate() {
            assert_eq!(r.output, vec![b as f64]);
        }
    }

    #[test]
    fn seed_base_threads_through_to_chambers() {
        struct SeedEcho;
        impl BlockProgram for SeedEcho {
            fn run(&self, _b: &BlockView, scratch: &mut gupt_sandbox::Scratch) -> Vec<f64> {
                vec![scratch.seed().map_or(-1.0, |s| (s % 97) as f64)]
            }
            fn output_dimension(&self) -> usize {
                1
            }
        }
        let manager = ComputationManager::new(ChamberPolicy::unbounded(), 4);
        let program: Arc<dyn BlockProgram> = Arc::new(SeedEcho);
        let blocks = || (0..12).map(|b| view(&[vec![b as f64]])).collect::<Vec<_>>();
        let (seq, _) = manager.execute_blocks_planned(
            &program,
            blocks(),
            None,
            Some(&ExecutionPolicy::sequential()),
            Some(42),
        );
        let (par, _) = manager.execute_blocks_planned(&program, blocks(), None, None, Some(42));
        let bits = |rs: &[ChamberReport]| -> Vec<u64> {
            rs.iter().map(|r| r.output[0].to_bits()).collect()
        };
        assert_eq!(bits(&seq), bits(&par));
        assert!(seq.iter().all(|r| r.output[0] >= 0.0), "seeds were present");
    }
}
