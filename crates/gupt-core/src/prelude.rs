//! One-stop imports for analysts.
//!
//! `use gupt_core::prelude::*;` brings in the whole analyst-facing
//! surface — building a runtime, describing queries, running them
//! (directly or through the admission-controlled service) and handling
//! the errors — without enumerating modules:
//!
//! ```
//! use gupt_core::prelude::*;
//!
//! let rows: Vec<Vec<f64>> = (0..2000).map(|i| vec![(i % 50) as f64]).collect();
//! let runtime = GuptRuntimeBuilder::new()
//!     .register_dataset("t", rows, Epsilon::new(5.0).unwrap())
//!     .unwrap()
//!     .seed(1)
//!     .build();
//! let spec = QuerySpec::view_program(|b: &BlockView| {
//!     vec![b.iter().map(|r| r[0]).sum::<f64>() / b.len() as f64]
//! })
//! .epsilon(Epsilon::new(1.0).unwrap())
//! .range_estimation(RangeEstimation::Tight(vec![OutputRange::new(0.0, 49.0).unwrap()]));
//! let answer: PrivateAnswer = runtime.run("t", spec).unwrap();
//! assert!(answer.epsilon_spent > 0.0);
//! ```
//!
//! Internal machinery (block planning, estimators, telemetry schema,
//! the WAL record format…) stays behind its modules on purpose; reach
//! into them explicitly when operating the system rather than querying
//! it. The audit rule for what belongs here: every name is used by at
//! least one `examples/` program or is part of the durable-service
//! surface (service config/stats, durability config, ledger
//! inspection, the zero-copy data-plane types [`RowStore`] and
//! [`BlockView`], the chamber-pool [`ExecutionPolicy`], the
//! answer-cache stats [`CacheStats`]); plumbing
//! types like the batch answer, query plans or range translators stay
//! behind `gupt_core::{batch, explain, output_range}`.

pub use crate::budget_estimator::AccuracyGoal;
pub use crate::cache::CacheStats;
pub use crate::dataset::Dataset;
pub use crate::dataset_manager::{DatasetRegistration, LedgerState};
pub use crate::error::GuptError;
pub use crate::output_range::RangeEstimation;
pub use crate::query::QuerySpec;
pub use crate::runtime::{GuptRuntime, GuptRuntimeBuilder, PrivateAnswer};
pub use crate::service::{QueryService, ServiceConfig, ServiceStats};
pub use crate::storage::{Durability, FsyncPolicy, RecoveredLedger, StorageConfig, StorageStats};
pub use gupt_dp::{Epsilon, OutputRange};
pub use gupt_sandbox::view::{BlockView, RowStore};
pub use gupt_sandbox::ExecutionPolicy;
