//! One-stop imports for analysts.
//!
//! `use gupt_core::prelude::*;` brings in the whole analyst-facing
//! surface — building a runtime, describing queries, running them
//! (directly or through the admission-controlled service) and handling
//! the errors — without enumerating modules:
//!
//! ```
//! use gupt_core::prelude::*;
//!
//! let rows: Vec<Vec<f64>> = (0..2000).map(|i| vec![(i % 50) as f64]).collect();
//! let runtime = GuptRuntimeBuilder::new()
//!     .register_dataset("t", rows, Epsilon::new(5.0).unwrap())
//!     .unwrap()
//!     .seed(1)
//!     .build();
//! let spec = QuerySpec::program(|b: &[Vec<f64>]| {
//!     vec![b.iter().map(|r| r[0]).sum::<f64>() / b.len() as f64]
//! })
//! .epsilon(Epsilon::new(1.0).unwrap())
//! .range_estimation(RangeEstimation::Tight(vec![OutputRange::new(0.0, 49.0).unwrap()]));
//! let answer: PrivateAnswer = runtime.run("t", spec).unwrap();
//! assert!(answer.epsilon_spent > 0.0);
//! ```
//!
//! Internal machinery (block planning, estimators, telemetry schema…)
//! stays behind its modules on purpose; reach into them explicitly when
//! operating the system rather than querying it.

pub use crate::batch::BatchAnswer;
pub use crate::budget_estimator::AccuracyGoal;
pub use crate::dataset::Dataset;
pub use crate::error::GuptError;
pub use crate::explain::QueryPlan;
pub use crate::output_range::{RangeEstimation, RangeTranslator};
pub use crate::query::QuerySpec;
pub use crate::runtime::{GuptRuntime, GuptRuntimeBuilder, PrivateAnswer};
pub use crate::service::{QueryService, ServiceConfig, ServiceStats};
pub use gupt_dp::{DpError, Epsilon, OutputRange};
