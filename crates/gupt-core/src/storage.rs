//! Durable storage for privacy ledgers: WAL + snapshot + recovery.
//!
//! GUPT's guarantee is only as strong as its budget accounting (§3.1,
//! §5.2): an in-memory ledger forgets every ε already spent when the
//! process dies, so an analyst who can crash the service could replay
//! queries past the lifetime budget. This module makes the ledger
//! crash-safe:
//!
//! - every successful charge is appended to a per-dataset **write-ahead
//!   log** *before* the in-memory debit (and before any private data is
//!   read), as a length+checksum framed record;
//! - the log is periodically **compacted** into a snapshot (total /
//!   spent / query count) plus an empty tail;
//! - **recovery** replays snapshot + WAL, truncating a torn tail to the
//!   longest valid record prefix.
//!
//! # The never-under-report invariant
//!
//! Recovery resolves every ambiguity conservatively: a record that was
//! durably acknowledged is always replayed, and a charge interrupted
//! mid-append is either dropped (it was never acknowledged, so the query
//! never ran) or — around compaction — counted twice. Over-reporting
//! spend wastes budget; under-reporting would break the ε guarantee, so
//! the books only ever err toward *more* spent.
//!
//! The same reasoning poisons a store whose append fails: once bytes of
//! unknown extent may sit at the tail, appending further valid records
//! after them could mask the damage, so the store wedges and every later
//! charge fails closed with [`GuptError::Storage`].
//!
//! # On-disk layout
//!
//! Under the configured state directory, per dataset `name`:
//!
//! - `name.wal` — framed records: `[len: u32 LE][crc32: u32 LE]`
//!   `[payload]` where the CRC covers `len ‖ payload` and the payload's
//!   first byte is a tag. Tag `0x01` is a budget debit
//!   (`[0x01][ε: f64 LE]`); tag `0x02` is a released-answer cache record
//!   (see [`CacheRecord`]) journaled so a restarted process recovers its
//!   warm answer cache together with the ledger; tag `0x03` is a
//!   **principal-attributed** debit
//!   (`[0x03][ε: f64 LE][name_len: u16 LE][name]`) — one physical record
//!   that is both a dataset debit *and* a per-tenant attribution, so a
//!   charge and its attribution can never tear apart across a crash.
//! - `name.snap` — magic ‖ version ‖ total ‖ spent ‖ queries ‖
//!   per-principal books ‖ crc32, written atomically (tmp + rename +
//!   fsync). Compaction folds *debits* (including attributed ones) into
//!   the snapshot and truncates the WAL, so cache records older than the
//!   last compaction are dropped: the persisted cache cold-starts, which
//!   costs latency on the next repeat query but never privacy. Version-1
//!   snapshots (no principal section) still decode, as an empty
//!   principal table.

use crate::error::GuptError;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Schema version written into snapshot headers. v2 appended the
/// per-principal books section; v1 snapshots (written before principals
/// existed) are still accepted on read.
pub const STORAGE_VERSION: u32 = 2;

/// Magic prefix of snapshot files.
const SNAP_MAGIC: &[u8; 8] = b"GUPTSNP1";

/// Record payload tag: a single budget debit.
const TAG_DEBIT: u8 = 0x01;

/// Record payload tag: a released answer journaled for the warm cache.
const TAG_CACHE: u8 = 0x02;

/// Record payload tag: a debit attributed to a named principal.
const TAG_PRINCIPAL: u8 = 0x03;

/// Frame header size: length (u32) + CRC (u32).
const FRAME_HEADER: usize = 8;

/// Debit payload size: tag + f64.
const DEBIT_PAYLOAD: usize = 9;

/// Fixed head of a principal-debit payload: tag ‖ ε ‖ name_len.
const PRINCIPAL_PAYLOAD_HEAD: usize = 1 + 8 + 2;

/// Fixed head of a cache payload: tag ‖ epoch ‖ fingerprint ‖ ε ‖
/// block_size ‖ num_blocks ‖ γ ‖ completed ‖ timed_out ‖ panicked ‖
/// values_len ‖ ranges_len.
const CACHE_PAYLOAD_HEAD: usize = 1 + 8 + 16 + 8 + 6 * 8 + 4 + 4;

/// Hard cap on any record payload, well above every legal record, so a
/// corrupt length field can never drive a huge allocation during a scan.
const MAX_PAYLOAD: usize = 1 << 20;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected), table-driven. Hand-rolled because the
// workspace is offline and carries no checksum crate; the polynomial is
// the same one zlib/ethernet use, so records are checkable with any
// standard crc32 tool.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------

/// When the WAL is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: a durably acknowledged charge survives
    /// power loss. The safest and slowest policy.
    Always,
    /// `fsync` after every `n` records. Bounds data-at-risk to at most
    /// `n - 1` *acknowledged-but-unsynced* charges — losing those
    /// under-reports nothing the analyst was told succeeded durably, but
    /// deployments wanting strict durability use [`FsyncPolicy::Always`].
    EveryN(u32),
    /// Never `fsync` explicitly; rely on the OS page cache. Survives
    /// process crashes (the records are in kernel buffers) but not power
    /// loss. Benchmarking / bulk-load mode.
    Never,
}

/// Where and how a dataset's ledger is persisted.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Directory holding `name.wal` / `name.snap` files.
    pub dir: PathBuf,
    /// WAL flush policy.
    pub fsync: FsyncPolicy,
    /// Compact the WAL into a snapshot once it holds this many records.
    pub compact_after: u64,
}

impl StorageConfig {
    /// A config rooted at `dir` with `EveryN(64)` fsync and compaction
    /// every 4096 records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StorageConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(64),
            compact_after: 4096,
        }
    }

    /// Sets the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the compaction threshold (clamped to ≥ 1).
    pub fn compact_after(mut self, records: u64) -> Self {
        self.compact_after = records.max(1);
        self
    }
}

/// Whether a dataset's ledger survives the process.
#[derive(Debug, Clone, Default)]
pub enum Durability {
    /// In-memory only: budget state dies with the process (the seed
    /// behaviour, and the right choice for tests and one-shot analyses).
    #[default]
    Ephemeral,
    /// WAL-backed: every charge is logged before it is granted and
    /// recovery replays the books on restart.
    Durable(StorageConfig),
}

// ---------------------------------------------------------------------
// Record framing.
// ---------------------------------------------------------------------

/// Wraps a payload in the `[len][crc][payload]` frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut crc_input = Vec::with_capacity(4 + payload.len());
    crc_input.extend_from_slice(&len.to_le_bytes());
    crc_input.extend_from_slice(payload);
    let crc = crc32(&crc_input);
    let mut rec = Vec::with_capacity(FRAME_HEADER + payload.len());
    rec.extend_from_slice(&len.to_le_bytes());
    rec.extend_from_slice(&crc.to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

/// Encodes one debit of `eps` as a framed WAL record.
pub fn encode_record(eps: f64) -> Vec<u8> {
    let mut payload = [0u8; DEBIT_PAYLOAD];
    payload[0] = TAG_DEBIT;
    payload[1..].copy_from_slice(&eps.to_le_bytes());
    frame(&payload)
}

/// Encodes one debit of `eps` attributed to `principal` as a framed WAL
/// record. The single record carries both the dataset debit and its
/// attribution, so recovery can never see one without the other.
pub fn encode_principal_record(principal: &str, eps: f64) -> Vec<u8> {
    let name = principal.as_bytes();
    debug_assert!(name.len() <= u16::MAX as usize);
    let mut payload = Vec::with_capacity(PRINCIPAL_PAYLOAD_HEAD + name.len());
    payload.push(TAG_PRINCIPAL);
    payload.extend_from_slice(&eps.to_le_bytes());
    payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
    payload.extend_from_slice(name);
    frame(&payload)
}

/// Decodes a principal-debit payload (past the tag check). `None` means
/// structurally malformed despite a valid CRC; the scanner stops, like
/// any other corruption.
fn decode_principal_payload(payload: &[u8]) -> Option<(String, f64)> {
    if payload.len() < PRINCIPAL_PAYLOAD_HEAD {
        return None;
    }
    let eps = f64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
    let name_len = u16::from_le_bytes(payload[9..11].try_into().expect("2 bytes")) as usize;
    if payload.len() != PRINCIPAL_PAYLOAD_HEAD + name_len || name_len == 0 {
        return None;
    }
    if !eps.is_finite() || eps < 0.0 {
        return None;
    }
    let name = std::str::from_utf8(&payload[PRINCIPAL_PAYLOAD_HEAD..]).ok()?;
    Some((name.to_string(), eps))
}

/// One released answer journaled to the WAL so the answer cache survives
/// a restart. Everything [`crate::runtime::PrivateAnswer`] carries
/// except telemetry (a replayed answer gets fresh hit-path telemetry),
/// plus the fingerprint it is stored under and the dataset registration
/// epoch it was computed against — recovery drops records whose epoch no
/// longer matches the re-registered data.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheRecord {
    /// Registration epoch (content hash) of the dataset at release time.
    pub epoch: u64,
    /// The answer's [`crate::cache::QueryFingerprint`], as raw bits.
    pub fingerprint: u128,
    /// ε the original release charged.
    pub epsilon_spent: f64,
    /// Block size β used.
    pub block_size: u64,
    /// Number of blocks ℓ aggregated.
    pub num_blocks: u64,
    /// Resampling factor γ.
    pub gamma: u64,
    /// Chambers that completed normally.
    pub completed: u64,
    /// Chambers killed on the execution budget.
    pub timed_out: u64,
    /// Chambers that panicked.
    pub panicked: u64,
    /// The released noisy values.
    pub values: Vec<f64>,
    /// The resolved clamping ranges, as (lo, hi) pairs.
    pub ranges: Vec<(f64, f64)>,
}

/// Encodes a cache record as a framed WAL record.
pub fn encode_cache_record(rec: &CacheRecord) -> Vec<u8> {
    let mut payload =
        Vec::with_capacity(CACHE_PAYLOAD_HEAD + 8 * rec.values.len() + 16 * rec.ranges.len());
    payload.push(TAG_CACHE);
    payload.extend_from_slice(&rec.epoch.to_le_bytes());
    payload.extend_from_slice(&rec.fingerprint.to_le_bytes());
    payload.extend_from_slice(&rec.epsilon_spent.to_le_bytes());
    payload.extend_from_slice(&rec.block_size.to_le_bytes());
    payload.extend_from_slice(&rec.num_blocks.to_le_bytes());
    payload.extend_from_slice(&rec.gamma.to_le_bytes());
    payload.extend_from_slice(&rec.completed.to_le_bytes());
    payload.extend_from_slice(&rec.timed_out.to_le_bytes());
    payload.extend_from_slice(&rec.panicked.to_le_bytes());
    payload.extend_from_slice(&(rec.values.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(rec.ranges.len() as u32).to_le_bytes());
    for v in &rec.values {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    for (lo, hi) in &rec.ranges {
        payload.extend_from_slice(&lo.to_le_bytes());
        payload.extend_from_slice(&hi.to_le_bytes());
    }
    frame(&payload)
}

/// Decodes a cache payload (past the tag check). `None` means the
/// payload is structurally malformed despite its valid CRC; the scanner
/// treats that exactly like a checksum failure and stops.
fn decode_cache_payload(payload: &[u8]) -> Option<CacheRecord> {
    if payload.len() < CACHE_PAYLOAD_HEAD {
        return None;
    }
    let u64_at = |o: usize| u64::from_le_bytes(payload[o..o + 8].try_into().expect("8 bytes"));
    let f64_at = |o: usize| f64::from_le_bytes(payload[o..o + 8].try_into().expect("8 bytes"));
    let epoch = u64_at(1);
    let fingerprint = u128::from_le_bytes(payload[9..25].try_into().expect("16 bytes"));
    let epsilon_spent = f64_at(25);
    let block_size = u64_at(33);
    let num_blocks = u64_at(41);
    let gamma = u64_at(49);
    let completed = u64_at(57);
    let timed_out = u64_at(65);
    let panicked = u64_at(73);
    let values_len = u32::from_le_bytes(payload[81..85].try_into().expect("4 bytes")) as usize;
    let ranges_len = u32::from_le_bytes(payload[85..89].try_into().expect("4 bytes")) as usize;
    if payload.len() != CACHE_PAYLOAD_HEAD + 8 * values_len + 16 * ranges_len {
        return None;
    }
    if !epsilon_spent.is_finite() || epsilon_spent < 0.0 {
        return None;
    }
    let mut pos = CACHE_PAYLOAD_HEAD;
    let mut values = Vec::with_capacity(values_len);
    for _ in 0..values_len {
        values.push(f64_at(pos));
        pos += 8;
    }
    let mut ranges = Vec::with_capacity(ranges_len);
    for _ in 0..ranges_len {
        ranges.push((f64_at(pos), f64_at(pos + 8)));
        pos += 16;
    }
    Some(CacheRecord {
        epoch,
        fingerprint,
        epsilon_spent,
        block_size,
        num_blocks,
        gamma,
        completed,
        timed_out,
        panicked,
        values,
        ranges,
    })
}

/// Result of scanning a WAL byte stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Decoded debit values, in append order. Principal-attributed
    /// debits appear here **and** in `principal_debits`: every `0x03`
    /// record is a dataset debit first.
    pub debits: Vec<f64>,
    /// Decoded (principal, ε) attributions, in append order.
    pub principal_debits: Vec<(String, f64)>,
    /// Decoded cache records, in append order.
    pub cache_records: Vec<CacheRecord>,
    /// Bytes of the longest valid record prefix.
    pub valid_len: usize,
    /// Whether bytes past `valid_len` were present (torn tail or
    /// corruption) and should be truncated.
    pub truncated: bool,
}

/// Scans a WAL image, returning the longest valid record prefix.
///
/// Scanning stops at the first incomplete or checksum-failing record:
/// everything before it is replayed, everything from it on is treated as
/// a torn tail. A record that fails its CRC was never acknowledged under
/// the write protocol (the store poisons itself on any partial append),
/// so dropping the tail never under-reports acknowledged spend. A
/// CRC-valid record with an unknown tag or a malformed payload stops the
/// scan for the same conservative reason: the log is not in a state this
/// implementation wrote, and guessing past it could mask damage.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut debits = Vec::new();
    let mut principal_debits = Vec::new();
    let mut cache_records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        // The cap keeps a corrupt length field from driving a huge
        // allocation; a short read means a torn tail.
        if len == 0 || len > MAX_PAYLOAD || bytes.len() - pos - FRAME_HEADER < len {
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        let mut crc_input = Vec::with_capacity(4 + len);
        crc_input.extend_from_slice(&(len as u32).to_le_bytes());
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            break;
        }
        match payload[0] {
            TAG_DEBIT => {
                if len != DEBIT_PAYLOAD {
                    break;
                }
                let eps = f64::from_le_bytes(payload[1..].try_into().expect("8 bytes"));
                if !eps.is_finite() || eps < 0.0 {
                    break;
                }
                debits.push(eps);
            }
            TAG_CACHE => match decode_cache_payload(payload) {
                Some(rec) => cache_records.push(rec),
                None => break,
            },
            TAG_PRINCIPAL => match decode_principal_payload(payload) {
                Some((name, eps)) => {
                    debits.push(eps);
                    principal_debits.push((name, eps));
                }
                None => break,
            },
            _ => break,
        }
        pos += FRAME_HEADER + len;
    }
    WalScan {
        debits,
        principal_debits,
        cache_records,
        valid_len: pos,
        truncated: pos < bytes.len(),
    }
}

// ---------------------------------------------------------------------
// Snapshot.
// ---------------------------------------------------------------------

/// One principal's compacted books: attributed spend and charge count.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrincipalBooks {
    /// ε attributed to this principal.
    pub spent: f64,
    /// Attributed charges.
    pub queries: u64,
}

/// Compacted ledger state: everything the WAL said up to the snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Lifetime budget ε.
    pub total: f64,
    /// ε spent at snapshot time.
    pub spent: f64,
    /// Successful charges at snapshot time.
    pub queries: u64,
    /// Per-principal books at snapshot time (v2; empty for v1 files).
    /// Compaction must carry these or truncating the WAL would
    /// under-report tenant spend.
    pub principals: BTreeMap<String, PrincipalBooks>,
}

fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + 4 + 8 + 8 + 8 + 4 + 4);
    body.extend_from_slice(SNAP_MAGIC);
    body.extend_from_slice(&STORAGE_VERSION.to_le_bytes());
    body.extend_from_slice(&snap.total.to_le_bytes());
    body.extend_from_slice(&snap.spent.to_le_bytes());
    body.extend_from_slice(&snap.queries.to_le_bytes());
    body.extend_from_slice(&(snap.principals.len() as u32).to_le_bytes());
    for (name, books) in &snap.principals {
        let bytes = name.as_bytes();
        body.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
        body.extend_from_slice(bytes);
        body.extend_from_slice(&books.spent.to_le_bytes());
        body.extend_from_slice(&books.queries.to_le_bytes());
    }
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

/// Fixed prefix shared by both snapshot versions: magic ‖ version ‖
/// total ‖ spent ‖ queries.
const SNAP_HEAD: usize = 8 + 4 + 8 + 8 + 8;

fn decode_snapshot(bytes: &[u8], path: &Path) -> Result<Snapshot, GuptError> {
    let corrupt = |detail: String| GuptError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if bytes.len() < SNAP_HEAD + 4 {
        return Err(corrupt("wrong snapshot length".into()));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != crc {
        return Err(corrupt("snapshot checksum mismatch".into()));
    }
    if &body[..8] != SNAP_MAGIC {
        return Err(corrupt("bad snapshot magic".into()));
    }
    let version = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
    if version != 1 && version != STORAGE_VERSION {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let total = f64::from_le_bytes(body[12..20].try_into().expect("8 bytes"));
    let spent = f64::from_le_bytes(body[20..28].try_into().expect("8 bytes"));
    let queries = u64::from_le_bytes(body[28..36].try_into().expect("8 bytes"));
    if !total.is_finite() || !spent.is_finite() || spent < 0.0 {
        return Err(corrupt("snapshot values out of range".into()));
    }
    let mut principals = BTreeMap::new();
    if version == 1 {
        if body.len() != SNAP_HEAD {
            return Err(corrupt("wrong snapshot length".into()));
        }
    } else {
        if body.len() < SNAP_HEAD + 4 {
            return Err(corrupt("wrong snapshot length".into()));
        }
        let count = u32::from_le_bytes(body[SNAP_HEAD..SNAP_HEAD + 4].try_into().expect("4 bytes"));
        let mut pos = SNAP_HEAD + 4;
        for _ in 0..count {
            if body.len() - pos < 2 {
                return Err(corrupt("truncated principal section".into()));
            }
            let name_len =
                u16::from_le_bytes(body[pos..pos + 2].try_into().expect("2 bytes")) as usize;
            pos += 2;
            if body.len() - pos < name_len + 16 {
                return Err(corrupt("truncated principal section".into()));
            }
            let name = std::str::from_utf8(&body[pos..pos + name_len])
                .map_err(|_| corrupt("principal name is not UTF-8".into()))?
                .to_string();
            pos += name_len;
            let p_spent = f64::from_le_bytes(body[pos..pos + 8].try_into().expect("8 bytes"));
            let p_queries =
                u64::from_le_bytes(body[pos + 8..pos + 16].try_into().expect("8 bytes"));
            pos += 16;
            if !p_spent.is_finite() || p_spent < 0.0 {
                return Err(corrupt("principal spend out of range".into()));
            }
            principals.insert(
                name,
                PrincipalBooks {
                    spent: p_spent,
                    queries: p_queries,
                },
            );
        }
        if pos != body.len() {
            return Err(corrupt("trailing bytes after principal section".into()));
        }
    }
    Ok(Snapshot {
        total,
        spent,
        queries,
        principals,
    })
}

// ---------------------------------------------------------------------
// WAL file abstraction + fault injection.
// ---------------------------------------------------------------------

/// The append-and-sync surface a [`LedgerStore`] writes through.
///
/// Production uses [`StdWalFile`]; the recovery test-suite wraps it in a
/// [`FailingStore`] to inject crashes at exact write boundaries.
pub trait WalFile: Send {
    /// Appends `bytes` at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Flushes all appended bytes to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// A [`WalFile`] over a real [`File`] opened in append mode.
#[derive(Debug)]
pub struct StdWalFile {
    file: File,
}

impl StdWalFile {
    /// Opens (creating if absent) `path` for appending.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(StdWalFile { file })
    }
}

impl WalFile for StdWalFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// What a [`FailingStore`] does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// The append returns an error with nothing written — a crash just
    /// before the write.
    Error,
    /// The given prefix length of the record is written, then the append
    /// errors — a torn write / crash mid-write.
    Truncate(usize),
    /// One bit of the record is flipped and the append *succeeds* —
    /// silent media corruption the checksum must catch at recovery.
    BitFlip(usize),
}

/// Fault-injection wrapper: passes writes through until the `n`-th
/// append (0-based), then applies [`FailureMode`] once.
pub struct FailingStore<W: WalFile> {
    inner: W,
    fail_at: u64,
    mode: FailureMode,
    appends: u64,
}

impl<W: WalFile> FailingStore<W> {
    /// Wraps `inner`, arming `mode` for the `fail_at`-th append.
    pub fn new(inner: W, fail_at: u64, mode: FailureMode) -> Self {
        FailingStore {
            inner,
            fail_at,
            mode,
            appends: 0,
        }
    }
}

impl<W: WalFile> WalFile for FailingStore<W> {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let n = self.appends;
        self.appends += 1;
        if n != self.fail_at {
            return self.inner.append(bytes);
        }
        match self.mode {
            FailureMode::Error => Err(io::Error::other("injected: append failed")),
            FailureMode::Truncate(keep) => {
                let keep = keep.min(bytes.len());
                self.inner.append(&bytes[..keep])?;
                let _ = self.inner.sync();
                Err(io::Error::other("injected: torn write"))
            }
            FailureMode::BitFlip(byte) => {
                let mut copy = bytes.to_vec();
                if let Some(b) = copy.get_mut(byte % bytes.len().max(1)) {
                    *b ^= 0x10;
                }
                self.inner.append(&copy)
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }
}

// ---------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------

/// What recovery reconstructed for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredLedger {
    /// Lifetime budget carried by the snapshot (0 when none existed).
    pub total: f64,
    /// ε spent: snapshot spend plus every valid WAL debit.
    pub spent: f64,
    /// Successful charges: snapshot count plus WAL *debit* records.
    pub queries: u64,
    /// Valid WAL records replayed (debits + cache records).
    pub wal_records: u64,
    /// Bytes discarded as a torn / corrupt tail.
    pub truncated_bytes: u64,
    /// Whether a snapshot contributed to the state.
    pub had_snapshot: bool,
    /// Released answers journaled in the WAL, for warming the answer
    /// cache. The runtime re-inserts only those whose `epoch` matches
    /// the dataset's current registration epoch.
    pub cache_records: Vec<CacheRecord>,
    /// Per-principal books: snapshot section merged with every valid WAL
    /// attribution. A principal appearing here but not in the new
    /// registration keeps its spend (quota zero) — tenant books are
    /// never under-reported either.
    pub principals: BTreeMap<String, PrincipalBooks>,
    /// Wall-clock time the replay took.
    pub replay: Duration,
}

fn storage_err(source: io::Error, path: &Path) -> GuptError {
    GuptError::Storage {
        source,
        path: path.to_path_buf(),
    }
}

/// Validates that a dataset name maps to a safe file stem.
fn file_stem(name: &str) -> Result<&str, GuptError> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !name.starts_with('.');
    if ok {
        Ok(name)
    } else {
        Err(GuptError::InvalidDataset(format!(
            "dataset name {name:?} is not filesystem-safe for durable storage \
             (use ASCII letters, digits, '-', '_', '.')"
        )))
    }
}

/// Paths of a dataset's durable files under `dir`.
fn paths(dir: &Path, name: &str) -> Result<(PathBuf, PathBuf), GuptError> {
    let stem = file_stem(name)?;
    Ok((
        dir.join(format!("{stem}.wal")),
        dir.join(format!("{stem}.snap")),
    ))
}

/// Replays a dataset's snapshot + WAL without opening it for writing.
///
/// Pure read: repeated recovery of the same state directory returns
/// bit-identical results. A missing state (no snapshot, no WAL) recovers
/// to zero spend; a *corrupt snapshot* is a hard [`GuptError::Corrupt`] —
/// the snapshot is the compacted truth and guessing around it could
/// under-report.
pub fn recover(name: &str, config: &StorageConfig) -> Result<RecoveredLedger, GuptError> {
    let start = Instant::now();
    let (wal_path, snap_path) = paths(&config.dir, name)?;

    let snapshot = match std::fs::read(&snap_path) {
        Ok(bytes) => Some(decode_snapshot(&bytes, &snap_path)?),
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(storage_err(e, &snap_path)),
    };

    let wal_bytes = match std::fs::read(&wal_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(storage_err(e, &wal_path)),
    };
    let scan = scan_wal(&wal_bytes);

    let had_snapshot = snapshot.is_some();
    let base = snapshot.unwrap_or(Snapshot {
        total: 0.0,
        spent: 0.0,
        queries: 0,
        principals: BTreeMap::new(),
    });
    let mut principals = base.principals;
    for (name, eps) in &scan.principal_debits {
        let books = principals.entry(name.clone()).or_default();
        books.spent += eps;
        books.queries += 1;
    }
    Ok(RecoveredLedger {
        total: base.total,
        spent: base.spent + scan.debits.iter().sum::<f64>(),
        queries: base.queries + scan.debits.len() as u64,
        wal_records: (scan.debits.len() + scan.cache_records.len()) as u64,
        truncated_bytes: (wal_bytes.len() - scan.valid_len) as u64,
        had_snapshot,
        cache_records: scan.cache_records,
        principals,
        replay: start.elapsed(),
    })
}

// ---------------------------------------------------------------------
// The live store.
// ---------------------------------------------------------------------

/// Persistence counters for one dataset's [`LedgerStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// WAL records appended by this process.
    pub records_written: u64,
    /// `fsync` calls issued by this process.
    pub fsyncs: u64,
    /// WAL→snapshot compactions performed.
    pub compactions: u64,
    /// Whether the store wedged after a failed write (all further
    /// charges fail closed).
    pub poisoned: bool,
}

/// The write side of one dataset's durable ledger.
///
/// Owned by the dataset entry behind a mutex: the holder serialises
/// check-afford → WAL append → in-memory debit so the on-disk order
/// matches the ledger order exactly.
pub struct LedgerStore {
    wal: Box<dyn WalFile>,
    wal_path: PathBuf,
    snap_path: PathBuf,
    fsync: FsyncPolicy,
    compact_after: u64,
    /// Records in the WAL file right now (survivors of recovery plus
    /// appends since).
    wal_records: u64,
    /// Appends since the last fsync (for `EveryN`).
    unsynced: u32,
    stats: StorageStats,
}

impl std::fmt::Debug for LedgerStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LedgerStore")
            .field("wal_path", &self.wal_path)
            .field("wal_records", &self.wal_records)
            .field("stats", &self.stats)
            .finish()
    }
}

impl LedgerStore {
    /// Opens (or creates) the durable state for `name`, truncating any
    /// torn WAL tail, and returns the store plus the recovered books.
    pub fn open(name: &str, config: &StorageConfig) -> Result<(Self, RecoveredLedger), GuptError> {
        std::fs::create_dir_all(&config.dir).map_err(|e| storage_err(e, &config.dir))?;
        let recovered = recover(name, config)?;
        let (wal_path, snap_path) = paths(&config.dir, name)?;

        // Physically drop the torn tail so the next append continues the
        // valid prefix instead of burying garbage mid-log.
        if recovered.truncated_bytes > 0 {
            let file = OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .map_err(|e| storage_err(e, &wal_path))?;
            let keep = std::fs::metadata(&wal_path)
                .map_err(|e| storage_err(e, &wal_path))?
                .len()
                .saturating_sub(recovered.truncated_bytes);
            file.set_len(keep).map_err(|e| storage_err(e, &wal_path))?;
            file.sync_data().map_err(|e| storage_err(e, &wal_path))?;
        }

        let wal = StdWalFile::open(&wal_path).map_err(|e| storage_err(e, &wal_path))?;
        Ok((
            LedgerStore {
                wal: Box::new(wal),
                wal_path,
                snap_path,
                fsync: config.fsync,
                compact_after: config.compact_after.max(1),
                wal_records: recovered.wal_records,
                unsynced: 0,
                stats: StorageStats::default(),
            },
            recovered,
        ))
    }

    /// Swaps the WAL backend — fault-injection hook for tests.
    pub fn with_wal(mut self, wal: Box<dyn WalFile>) -> Self {
        self.wal = wal;
        self
    }

    /// Point-in-time persistence counters.
    pub fn stats(&self) -> StorageStats {
        self.stats
    }

    /// Whether the store has wedged after a failed write.
    pub fn is_poisoned(&self) -> bool {
        self.stats.poisoned
    }

    fn poisoned_err(&self) -> GuptError {
        GuptError::Storage {
            source: io::Error::other(
                "ledger store is poisoned after an earlier write failure; \
                 restart and recover to resume charging",
            ),
            path: self.wal_path.clone(),
        }
    }

    /// Durably logs one debit of `eps`. On any failure the store poisons
    /// itself: bytes of unknown extent may sit at the WAL tail and
    /// appending valid records after them could mask the damage at
    /// recovery (an under-report). The charge must be considered
    /// *not granted*.
    pub fn append_charge(&mut self, eps: f64) -> Result<(), GuptError> {
        self.append_framed(encode_record(eps))
    }

    /// Durably logs one debit of `eps` attributed to `principal`, under
    /// the same write protocol (and poisoning rules) as
    /// [`LedgerStore::append_charge`]. One record carries both the
    /// dataset debit and the attribution, so neither can survive a crash
    /// without the other.
    pub fn append_principal_charge(&mut self, principal: &str, eps: f64) -> Result<(), GuptError> {
        self.append_framed(encode_principal_record(principal, eps))
    }

    /// Durably journals one released answer for the warm cache, under
    /// the same write protocol as [`LedgerStore::append_charge`]: any
    /// failure poisons the store, because bytes of unknown extent at the
    /// WAL tail would make *later debits* unrecoverable — the privacy
    /// books and the cache share one log.
    pub fn append_cache_record(&mut self, rec: &CacheRecord) -> Result<(), GuptError> {
        self.append_framed(encode_cache_record(rec))
    }

    fn append_framed(&mut self, record: Vec<u8>) -> Result<(), GuptError> {
        if self.stats.poisoned {
            return Err(self.poisoned_err());
        }
        if let Err(e) = self.wal.append(&record) {
            self.stats.poisoned = true;
            return Err(storage_err(e, &self.wal_path));
        }
        self.stats.records_written += 1;
        self.wal_records += 1;
        self.unsynced += 1;
        let should_sync = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if should_sync {
            if let Err(e) = self.wal.sync() {
                self.stats.poisoned = true;
                return Err(storage_err(e, &self.wal_path));
            }
            self.stats.fsyncs += 1;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Compacts WAL → snapshot once the log is long enough.
    ///
    /// `total` / `spent` / `queries` are the ledger's books *including*
    /// every debit already appended, and `principals` the per-tenant
    /// books at the same point — the snapshot must carry them because
    /// truncating the WAL drops the `0x03` attribution records. The
    /// snapshot is written atomically (tmp + rename + fsync) before the
    /// WAL is truncated; a crash between the two leaves the WAL records
    /// double-counted on recovery — a bounded over-report, never an
    /// under-report. Compaction failures poison the store (fail closed)
    /// like append failures.
    pub fn maybe_compact(
        &mut self,
        total: f64,
        spent: f64,
        queries: u64,
        principals: &BTreeMap<String, PrincipalBooks>,
    ) -> Result<(), GuptError> {
        if self.stats.poisoned || self.wal_records < self.compact_after {
            return Ok(());
        }
        if let Err(e) = self.write_snapshot(&Snapshot {
            total,
            spent,
            queries,
            principals: principals.clone(),
        }) {
            self.stats.poisoned = true;
            return Err(e);
        }
        // Truncate the WAL now that the snapshot owns its records.
        if let Err(e) = OpenOptions::new()
            .write(true)
            .open(&self.wal_path)
            .and_then(|f| {
                f.set_len(0)?;
                f.sync_data()
            })
        {
            self.stats.poisoned = true;
            return Err(storage_err(e, &self.wal_path));
        }
        // Reopen so the append cursor restarts at the (new) end.
        match StdWalFile::open(&self.wal_path) {
            Ok(f) => self.wal = Box::new(f),
            Err(e) => {
                self.stats.poisoned = true;
                return Err(storage_err(e, &self.wal_path));
            }
        }
        self.wal_records = 0;
        self.unsynced = 0;
        self.stats.compactions += 1;
        Ok(())
    }

    fn write_snapshot(&self, snap: &Snapshot) -> Result<(), GuptError> {
        let tmp = self.snap_path.with_extension("snap.tmp");
        let bytes = encode_snapshot(snap);
        let mut file = File::create(&tmp).map_err(|e| storage_err(e, &tmp))?;
        file.write_all(&bytes).map_err(|e| storage_err(e, &tmp))?;
        file.sync_all().map_err(|e| storage_err(e, &tmp))?;
        drop(file);
        std::fs::rename(&tmp, &self.snap_path).map_err(|e| storage_err(e, &self.snap_path))?;
        // Sync the directory so the rename itself is durable.
        if let Some(dir) = self.snap_path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

/// Reads the raw WAL image for a dataset (test/inspection helper).
pub fn read_wal(name: &str, config: &StorageConfig) -> Result<Vec<u8>, GuptError> {
    let (wal_path, _) = paths(&config.dir, name)?;
    match std::fs::read(&wal_path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(storage_err(e, &wal_path)),
    }
}

/// Opens a WAL file read-only and returns its contents (used by tests
/// that inject faults through a custom [`WalFile`] and then re-scan).
pub fn read_file(path: &Path) -> Result<Vec<u8>, GuptError> {
    let mut file = File::open(path).map_err(|e| storage_err(e, path))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| storage_err(e, path))?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("gupt_storage_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip() {
        let mut image = Vec::new();
        for eps in [0.5, 1.25, 1e-9, 42.0] {
            image.extend_from_slice(&encode_record(eps));
        }
        let scan = scan_wal(&image);
        assert_eq!(scan.debits, vec![0.5, 1.25, 1e-9, 42.0]);
        assert_eq!(scan.valid_len, image.len());
        assert!(!scan.truncated);
    }

    #[test]
    fn bit_flip_rejected() {
        let mut image = encode_record(0.7);
        image.extend_from_slice(&encode_record(0.3));
        let rec_len = encode_record(0.7).len();
        // Flip one bit in the second record's payload.
        image[rec_len + FRAME_HEADER + 3] ^= 0x01;
        let scan = scan_wal(&image);
        assert_eq!(scan.debits, vec![0.7]);
        assert!(scan.truncated);
        assert_eq!(scan.valid_len, rec_len);
    }

    #[test]
    fn torn_tail_recovers_longest_prefix() {
        let mut image = Vec::new();
        for eps in [0.1, 0.2, 0.3] {
            image.extend_from_slice(&encode_record(eps));
        }
        let full = image.len();
        image.extend_from_slice(&encode_record(0.4)[..5]); // torn mid-write
        let scan = scan_wal(&image);
        assert_eq!(scan.debits, vec![0.1, 0.2, 0.3]);
        assert_eq!(scan.valid_len, full);
        assert!(scan.truncated);
    }

    #[test]
    fn snapshot_roundtrip_and_corruption() {
        let snap = Snapshot {
            total: 5.0,
            spent: 3.25,
            queries: 17,
            principals: BTreeMap::new(),
        };
        let mut bytes = encode_snapshot(&snap);
        let p = Path::new("x.snap");
        assert_eq!(decode_snapshot(&bytes, p).unwrap(), snap);
        bytes[15] ^= 0x40;
        assert!(matches!(
            decode_snapshot(&bytes, p).unwrap_err(),
            GuptError::Corrupt { .. }
        ));
    }

    #[test]
    fn snapshot_roundtrips_principal_books() {
        let mut principals = BTreeMap::new();
        principals.insert(
            "alice".to_string(),
            PrincipalBooks {
                spent: 1.25,
                queries: 5,
            },
        );
        principals.insert(
            "svc@batch".to_string(),
            PrincipalBooks {
                spent: 0.0,
                queries: 0,
            },
        );
        let snap = Snapshot {
            total: 5.0,
            spent: 3.25,
            queries: 17,
            principals,
        };
        let bytes = encode_snapshot(&snap);
        assert_eq!(decode_snapshot(&bytes, Path::new("x.snap")).unwrap(), snap);
    }

    #[test]
    fn v1_snapshot_still_decodes() {
        // Hand-build the 40-byte v1 layout a pre-principal release wrote.
        let mut body = Vec::new();
        body.extend_from_slice(SNAP_MAGIC);
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&5.0f64.to_le_bytes());
        body.extend_from_slice(&2.5f64.to_le_bytes());
        body.extend_from_slice(&9u64.to_le_bytes());
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        let snap = decode_snapshot(&body, Path::new("x.snap")).unwrap();
        assert_eq!((snap.total, snap.spent, snap.queries), (5.0, 2.5, 9));
        assert!(snap.principals.is_empty());
    }

    #[test]
    fn unknown_snapshot_version_rejected_with_detail() {
        let mut body = Vec::new();
        body.extend_from_slice(SNAP_MAGIC);
        body.extend_from_slice(&7u32.to_le_bytes());
        body.extend_from_slice(&5.0f64.to_le_bytes());
        body.extend_from_slice(&2.5f64.to_le_bytes());
        body.extend_from_slice(&9u64.to_le_bytes());
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        let err = decode_snapshot(&body, Path::new("x.snap")).unwrap_err();
        assert!(
            err.to_string().contains("unsupported snapshot version 7"),
            "{err}"
        );
    }

    #[test]
    fn store_logs_syncs_and_compacts() {
        let dir = tmp_dir("lifecycle");
        let config = StorageConfig::new(&dir)
            .fsync(FsyncPolicy::Always)
            .compact_after(3);
        let (mut store, recovered) = LedgerStore::open("d", &config).unwrap();
        assert_eq!(recovered.spent, 0.0);
        let mut spent = 0.0;
        for i in 0..5u64 {
            store.append_charge(0.5).unwrap();
            spent += 0.5;
            store
                .maybe_compact(10.0, spent, i + 1, &BTreeMap::new())
                .unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.records_written, 5);
        assert_eq!(stats.fsyncs, 5);
        assert_eq!(stats.compactions, 1);
        drop(store);

        let recovered = recover("d", &config).unwrap();
        assert!((recovered.spent - 2.5).abs() < 1e-12);
        assert_eq!(recovered.queries, 5);
        assert!(recovered.had_snapshot);
        // Only the post-compaction records remain in the WAL.
        assert_eq!(recovered.wal_records, 2);
    }

    #[test]
    fn recovery_is_idempotent() {
        let dir = tmp_dir("idempotent");
        let config = StorageConfig::new(&dir).fsync(FsyncPolicy::Always);
        let (mut store, _) = LedgerStore::open("d", &config).unwrap();
        for _ in 0..4 {
            store.append_charge(0.25).unwrap();
        }
        drop(store);
        let a = recover("d", &config).unwrap();
        let b = recover("d", &config).unwrap();
        assert_eq!(
            (a.spent, a.queries, a.wal_records),
            (b.spent, b.queries, b.wal_records)
        );
    }

    #[test]
    fn open_truncates_torn_tail() {
        let dir = tmp_dir("torn");
        let config = StorageConfig::new(&dir).fsync(FsyncPolicy::Always);
        let (mut store, _) = LedgerStore::open("d", &config).unwrap();
        store.append_charge(0.5).unwrap();
        drop(store);
        // Simulate a torn write at the tail.
        let wal_path = dir.join("d.wal");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let valid = bytes.len();
        bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
        std::fs::write(&wal_path, &bytes).unwrap();

        let (store, recovered) = LedgerStore::open("d", &config).unwrap();
        assert_eq!(recovered.truncated_bytes, 3);
        assert_eq!(recovered.wal_records, 1);
        drop(store);
        assert_eq!(std::fs::metadata(&wal_path).unwrap().len() as usize, valid);
    }

    #[test]
    fn failing_store_poisons_on_error() {
        let dir = tmp_dir("poison");
        let config = StorageConfig::new(&dir).fsync(FsyncPolicy::Always);
        let (store, _) = LedgerStore::open("d", &config).unwrap();
        let wal = StdWalFile::open(&dir.join("d.wal")).unwrap();
        let mut store = store.with_wal(Box::new(FailingStore::new(wal, 1, FailureMode::Error)));
        store.append_charge(0.5).unwrap();
        let err = store.append_charge(0.5).unwrap_err();
        assert!(matches!(err, GuptError::Storage { .. }));
        assert!(store.is_poisoned());
        // Every further charge fails closed.
        assert!(store.append_charge(0.1).is_err());
        drop(store);
        let recovered = recover("d", &config).unwrap();
        assert!((recovered.spent - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unsafe_dataset_names_rejected() {
        let config = StorageConfig::new(std::env::temp_dir());
        for bad in ["", "a/b", "..", ".hidden", "a b", "ü"] {
            assert!(
                matches!(recover(bad, &config), Err(GuptError::InvalidDataset(_))),
                "{bad:?} accepted"
            );
        }
        assert!(file_stem("ok-name_1.v2").is_ok());
    }

    fn sample_cache_record(fp: u128) -> CacheRecord {
        CacheRecord {
            epoch: 0xFEED_F00D,
            fingerprint: fp,
            epsilon_spent: 0.75,
            block_size: 100,
            num_blocks: 10,
            gamma: 2,
            completed: 9,
            timed_out: 1,
            panicked: 0,
            values: vec![39.5, -1.25],
            ranges: vec![(0.0, 100.0), (-5.0, 5.0)],
        }
    }

    #[test]
    fn cache_record_roundtrip() {
        let rec = sample_cache_record(0xDEAD_BEEF_CAFE_BABE_0123_4567_89AB_CDEF);
        let mut image = encode_cache_record(&rec);
        image.extend_from_slice(&encode_record(0.5));
        image.extend_from_slice(&encode_cache_record(&sample_cache_record(7)));
        let scan = scan_wal(&image);
        assert_eq!(scan.debits, vec![0.5]);
        assert_eq!(scan.cache_records.len(), 2);
        assert_eq!(scan.cache_records[0], rec);
        assert_eq!(scan.cache_records[1].fingerprint, 7);
        assert!(!scan.truncated);
    }

    #[test]
    fn empty_value_cache_record_roundtrip() {
        let mut rec = sample_cache_record(1);
        rec.values.clear();
        rec.ranges.clear();
        let scan = scan_wal(&encode_cache_record(&rec));
        assert_eq!(scan.cache_records, vec![rec]);
    }

    #[test]
    fn corrupt_cache_record_stops_scan_conservatively() {
        let mut image = encode_record(0.5);
        let cache_rec = encode_cache_record(&sample_cache_record(3));
        image.extend_from_slice(&cache_rec);
        image.extend_from_slice(&encode_record(0.25));
        // Flip a bit inside the cache record's payload: the scan must
        // keep the first debit, drop the cache record AND the debit
        // behind it (never-under-report treats the rest as torn).
        let flip_at = encode_record(0.5).len() + FRAME_HEADER + 10;
        image[flip_at] ^= 0x04;
        let scan = scan_wal(&image);
        assert_eq!(scan.debits, vec![0.5]);
        assert!(scan.cache_records.is_empty());
        assert!(scan.truncated);
    }

    #[test]
    fn unknown_tag_stops_scan() {
        let mut payload = vec![0x7Fu8];
        payload.extend_from_slice(&1.0f64.to_le_bytes());
        let mut image = encode_record(0.5);
        image.extend_from_slice(&frame(&payload));
        let scan = scan_wal(&image);
        assert_eq!(scan.debits, vec![0.5]);
        assert!(scan.truncated);
    }

    #[test]
    fn malformed_cache_length_fields_rejected() {
        // CRC-valid payload whose declared values_len disagrees with the
        // actual byte count: structurally malformed, scan stops.
        let good = encode_cache_record(&sample_cache_record(9));
        let payload_start = FRAME_HEADER;
        let mut payload = good[payload_start..].to_vec();
        payload[81] = payload[81].wrapping_add(1); // values_len += 1
        let image = frame(&payload);
        let scan = scan_wal(&image);
        assert!(scan.cache_records.is_empty());
        assert!(scan.truncated);
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn store_appends_cache_records_and_recovers_them() {
        let dir = tmp_dir("cache_records");
        let config = StorageConfig::new(&dir).fsync(FsyncPolicy::Always);
        let (mut store, _) = LedgerStore::open("d", &config).unwrap();
        store.append_charge(0.5).unwrap();
        store.append_cache_record(&sample_cache_record(11)).unwrap();
        store.append_charge(0.25).unwrap();
        assert_eq!(store.stats().records_written, 3);
        drop(store);
        let recovered = recover("d", &config).unwrap();
        assert!((recovered.spent - 0.75).abs() < 1e-12);
        assert_eq!(recovered.queries, 2, "cache records are not charges");
        assert_eq!(recovered.wal_records, 3, "but they are physical records");
        assert_eq!(recovered.cache_records.len(), 1);
        assert_eq!(recovered.cache_records[0].fingerprint, 11);
    }

    #[test]
    fn compaction_drops_cache_records() {
        let dir = tmp_dir("cache_compaction");
        let config = StorageConfig::new(&dir)
            .fsync(FsyncPolicy::Always)
            .compact_after(2);
        let (mut store, _) = LedgerStore::open("d", &config).unwrap();
        store.append_charge(0.5).unwrap();
        store.append_cache_record(&sample_cache_record(5)).unwrap();
        // 2 physical records reach the threshold; compaction folds the
        // debit into the snapshot and truncates the cache record away.
        store.maybe_compact(10.0, 0.5, 1, &BTreeMap::new()).unwrap();
        drop(store);
        let recovered = recover("d", &config).unwrap();
        assert!((recovered.spent - 0.5).abs() < 1e-12);
        assert_eq!(recovered.queries, 1);
        assert!(recovered.cache_records.is_empty(), "cache cold-starts");
    }

    #[test]
    fn principal_record_roundtrip() {
        let mut image = encode_principal_record("alice", 0.5);
        image.extend_from_slice(&encode_record(0.25));
        image.extend_from_slice(&encode_principal_record("svc@batch", 0.125));
        let scan = scan_wal(&image);
        // Principal debits are dataset debits too.
        assert_eq!(scan.debits, vec![0.5, 0.25, 0.125]);
        assert_eq!(
            scan.principal_debits,
            vec![("alice".to_string(), 0.5), ("svc@batch".to_string(), 0.125)]
        );
        assert!(!scan.truncated);
    }

    #[test]
    fn malformed_principal_record_stops_scan() {
        // CRC-valid payload whose name_len disagrees with the byte count.
        let good = encode_principal_record("alice", 0.5);
        let mut payload = good[FRAME_HEADER..].to_vec();
        payload[9] = payload[9].wrapping_add(1); // name_len += 1
        let mut image = encode_record(0.25);
        image.extend_from_slice(&frame(&payload));
        image.extend_from_slice(&encode_record(0.125));
        let scan = scan_wal(&image);
        assert_eq!(scan.debits, vec![0.25]);
        assert!(scan.principal_debits.is_empty());
        assert!(scan.truncated);

        // Empty names and non-UTF-8 names are likewise malformed.
        let empty = {
            let mut p = vec![TAG_PRINCIPAL];
            p.extend_from_slice(&0.5f64.to_le_bytes());
            p.extend_from_slice(&0u16.to_le_bytes());
            frame(&p)
        };
        assert!(scan_wal(&empty).truncated);
        let bad_utf8 = {
            let mut p = vec![TAG_PRINCIPAL];
            p.extend_from_slice(&0.5f64.to_le_bytes());
            p.extend_from_slice(&2u16.to_le_bytes());
            p.extend_from_slice(&[0xFF, 0xFE]);
            frame(&p)
        };
        assert!(scan_wal(&bad_utf8).truncated);
    }

    #[test]
    fn store_appends_principal_charges_and_recovers_books() {
        let dir = tmp_dir("principal_records");
        let config = StorageConfig::new(&dir).fsync(FsyncPolicy::Always);
        let (mut store, _) = LedgerStore::open("d", &config).unwrap();
        store.append_principal_charge("alice", 0.5).unwrap();
        store.append_charge(0.25).unwrap();
        store.append_principal_charge("alice", 0.125).unwrap();
        store.append_principal_charge("bob", 0.0625).unwrap();
        drop(store);
        let recovered = recover("d", &config).unwrap();
        assert!((recovered.spent - 0.9375).abs() < 1e-12);
        assert_eq!(recovered.queries, 4);
        let alice = recovered.principals.get("alice").unwrap();
        assert!((alice.spent - 0.625).abs() < 1e-12);
        assert_eq!(alice.queries, 2);
        assert_eq!(recovered.principals.get("bob").unwrap().queries, 1);
    }

    #[test]
    fn compaction_preserves_principal_books() {
        let dir = tmp_dir("principal_compaction");
        let config = StorageConfig::new(&dir)
            .fsync(FsyncPolicy::Always)
            .compact_after(2);
        let (mut store, _) = LedgerStore::open("d", &config).unwrap();
        store.append_principal_charge("alice", 0.5).unwrap();
        store.append_principal_charge("bob", 0.25).unwrap();
        let mut books = BTreeMap::new();
        books.insert(
            "alice".to_string(),
            PrincipalBooks {
                spent: 0.5,
                queries: 1,
            },
        );
        books.insert(
            "bob".to_string(),
            PrincipalBooks {
                spent: 0.25,
                queries: 1,
            },
        );
        store.maybe_compact(10.0, 0.75, 2, &books).unwrap();
        // Post-compaction, more attributed spend lands in the WAL.
        store.append_principal_charge("alice", 0.125).unwrap();
        drop(store);
        let recovered = recover("d", &config).unwrap();
        assert!(recovered.had_snapshot);
        assert!((recovered.spent - 0.875).abs() < 1e-12);
        assert_eq!(recovered.queries, 3);
        let alice = recovered.principals.get("alice").unwrap();
        assert!((alice.spent - 0.625).abs() < 1e-12, "snapshot + WAL merge");
        assert_eq!(alice.queries, 2);
        assert!((recovered.principals.get("bob").unwrap().spent - 0.25).abs() < 1e-12);
    }

    #[test]
    fn every_n_fsync_batches() {
        let dir = tmp_dir("everyn");
        let config = StorageConfig::new(&dir).fsync(FsyncPolicy::EveryN(4));
        let (mut store, _) = LedgerStore::open("d", &config).unwrap();
        for _ in 0..10 {
            store.append_charge(0.1).unwrap();
        }
        assert_eq!(store.stats().fsyncs, 2);
        assert_eq!(store.stats().records_written, 10);
    }
}
