//! The runtime's error type.

use gupt_dp::DpError;
use std::fmt;
use std::path::PathBuf;

/// Errors surfaced by the GUPT runtime.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm,
/// which lets the runtime grow new failure modes (as the storage layer
/// did) without a breaking release.
#[derive(Debug)]
#[non_exhaustive]
pub enum GuptError {
    /// No dataset registered under the given name.
    DatasetNotFound(String),
    /// A dataset with this name is already registered.
    DatasetExists(String),
    /// The dataset has no rows (or rows of inconsistent width).
    InvalidDataset(String),
    /// A query declared `expected` output/input dimensions but `got` were
    /// supplied (e.g. wrong number of tight ranges).
    DimensionMismatch {
        /// What the query spec requires.
        expected: usize,
        /// What was supplied.
        got: usize,
    },
    /// An underlying DP primitive failed (budget exhaustion, invalid ε…).
    Dp(DpError),
    /// §5.1: the requested accuracy goal cannot be met at any ε because
    /// the estimation error alone already exceeds the permitted variance.
    InfeasibleAccuracyGoal {
        /// Permitted output standard deviation derived from the goal.
        permitted_std: f64,
        /// Estimation-error standard deviation measured on aged data.
        estimation_std: f64,
    },
    /// An operation needed aged (privacy-insensitive) data but the
    /// dataset was registered without an aged fraction.
    NoAgedData(String),
    /// The query specification is internally inconsistent.
    InvalidSpec(String),
    /// The query service refused admission: the in-flight limit is
    /// saturated and the waiting queue is full. Fail-fast — the analyst
    /// should back off and resubmit.
    Overloaded {
        /// Queries executing when admission was refused.
        in_flight: usize,
        /// Queries already waiting for a slot.
        queued: usize,
    },
    /// The query waited in the admission queue past its deadline.
    DeadlineExceeded {
        /// How long the query waited before being abandoned.
        waited_ms: u64,
    },
    /// A durable-ledger I/O operation failed. The affected charge was
    /// **not** granted (the store fails closed); the underlying
    /// [`std::io::Error`] is reachable through `source()`.
    Storage {
        /// The failing I/O error.
        source: std::io::Error,
        /// The file or directory the operation touched.
        path: PathBuf,
    },
    /// Durable ledger state failed validation (bad magic, checksum
    /// mismatch, impossible values). Recovery refuses to guess — fixing
    /// or removing the named file is an operator decision.
    Corrupt {
        /// The corrupt file.
        path: PathBuf,
        /// What failed to validate.
        detail: String,
    },
    /// A principal's per-tenant ε quota cannot cover the charge (or the
    /// principal is paused awaiting an operator `continue`). The dataset
    /// ledger was **not** debited.
    QuotaExhausted {
        /// The refused principal.
        principal: String,
        /// ε the charge asked for.
        requested: f64,
        /// Quota ε left for this principal (clamped at zero).
        remaining: f64,
        /// Whether the principal is now paused and needs an operator
        /// `continue` before any further charge can succeed
        /// ([`crate::principal::ExhaustedPolicy::PauseApproval`]).
        paused: bool,
    },
    /// A charge was attributed to a principal the dataset has never
    /// registered or recovered.
    UnknownPrincipal(String),
}

impl fmt::Display for GuptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuptError::DatasetNotFound(name) => write!(f, "dataset {name:?} is not registered"),
            GuptError::DatasetExists(name) => {
                write!(f, "dataset {name:?} is already registered")
            }
            GuptError::InvalidDataset(why) => write!(f, "invalid dataset: {why}"),
            GuptError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            GuptError::Dp(e) => write!(f, "differential privacy error: {e}"),
            GuptError::InfeasibleAccuracyGoal {
                permitted_std,
                estimation_std,
            } => write!(
                f,
                "accuracy goal infeasible: permitted std {permitted_std} is below the \
                 estimation-error std {estimation_std}; use larger blocks or relax the goal"
            ),
            GuptError::NoAgedData(name) => {
                write!(
                    f,
                    "dataset {name:?} has no aged (privacy-insensitive) portion"
                )
            }
            GuptError::InvalidSpec(why) => write!(f, "invalid query spec: {why}"),
            GuptError::Overloaded { in_flight, queued } => write!(
                f,
                "service overloaded: {in_flight} queries in flight, {queued} queued; retry later"
            ),
            GuptError::DeadlineExceeded { waited_ms } => {
                write!(
                    f,
                    "deadline exceeded after waiting {waited_ms} ms for admission"
                )
            }
            GuptError::Storage { source, path } => {
                write!(
                    f,
                    "ledger storage failure at {}: {source} (charge not granted)",
                    path.display()
                )
            }
            GuptError::Corrupt { path, detail } => {
                write!(
                    f,
                    "corrupt ledger state at {}: {detail}; refusing to guess — \
                     inspect or remove the file to recover",
                    path.display()
                )
            }
            GuptError::QuotaExhausted {
                principal,
                requested,
                remaining,
                paused,
            } => {
                write!(
                    f,
                    "principal {principal:?} quota exhausted: requested ε {requested}, \
                     remaining ε {remaining}"
                )?;
                if *paused {
                    write!(f, "; paused awaiting operator continue")?;
                }
                Ok(())
            }
            GuptError::UnknownPrincipal(name) => {
                write!(f, "principal {name:?} is not registered for this dataset")
            }
        }
    }
}

impl std::error::Error for GuptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GuptError::Dp(e) => Some(e),
            GuptError::Storage { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<DpError> for GuptError {
    fn from(e: DpError) -> Self {
        GuptError::Dp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(GuptError, &str)> = vec![
            (GuptError::DatasetNotFound("x".into()), "not registered"),
            (GuptError::DatasetExists("x".into()), "already"),
            (GuptError::InvalidDataset("empty".into()), "empty"),
            (
                GuptError::DimensionMismatch {
                    expected: 2,
                    got: 3,
                },
                "expected 2",
            ),
            (GuptError::Dp(DpError::EmptyInput), "empty"),
            (
                GuptError::InfeasibleAccuracyGoal {
                    permitted_std: 0.1,
                    estimation_std: 0.5,
                },
                "infeasible",
            ),
            (GuptError::NoAgedData("x".into()), "aged"),
            (GuptError::InvalidSpec("bad".into()), "bad"),
            (
                GuptError::Overloaded {
                    in_flight: 4,
                    queued: 8,
                },
                "overloaded",
            ),
            (GuptError::DeadlineExceeded { waited_ms: 250 }, "250 ms"),
            (
                GuptError::Storage {
                    source: std::io::Error::other("disk gone"),
                    path: PathBuf::from("/state/d.wal"),
                },
                "d.wal",
            ),
            (
                GuptError::Corrupt {
                    path: PathBuf::from("/state/d.snap"),
                    detail: "checksum mismatch".into(),
                },
                "checksum",
            ),
            (
                GuptError::QuotaExhausted {
                    principal: "alice".into(),
                    requested: 0.5,
                    remaining: 0.25,
                    paused: false,
                },
                "quota exhausted",
            ),
            (
                GuptError::QuotaExhausted {
                    principal: "alice".into(),
                    requested: 0.5,
                    remaining: 0.0,
                    paused: true,
                },
                "awaiting operator continue",
            ),
            (
                GuptError::UnknownPrincipal("mallory".into()),
                "not registered",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn dp_error_converts_and_sources() {
        let err: GuptError = DpError::EmptyInput.into();
        assert!(matches!(err, GuptError::Dp(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn storage_error_chains_io_source() {
        let err = GuptError::Storage {
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "ro fs"),
            path: PathBuf::from("/state/d.wal"),
        };
        let source = std::error::Error::source(&err).expect("io source");
        let io = source.downcast_ref::<std::io::Error>().expect("io error");
        assert_eq!(io.kind(), std::io::ErrorKind::PermissionDenied);
        // Corrupt carries no source: the file itself is the evidence.
        let corrupt = GuptError::Corrupt {
            path: PathBuf::from("x"),
            detail: "bad magic".into(),
        };
        assert!(std::error::Error::source(&corrupt).is_none());
    }
}
