//! Dataset partitioning and the §4.2 resampling scheme.
//!
//! Algorithm 1 splits the dataset into `ℓ = n^0.4` disjoint blocks of
//! size `β = n^0.6`. Resampling generalises this: each record resides in
//! exactly `γ` distinct blocks, realised here as `γ` independent
//! partitions of the record indices (so `ℓ = γ·⌈n/β⌉` in total). Claim 1:
//! because one record can perturb at most `γ` block outputs, the
//! sensitivity of the block average is `γ·s/ℓ = s·β/n` — independent of
//! `γ` — so resampling reduces partition variance for free.

use gupt_sandbox::view::{BlockView, RowStore};
use rand::{Rng, RngExt};
use std::sync::Arc;

/// A partition plan: blocks of record indices into the dataset.
///
/// Index lists are `Arc`-backed so that the [`BlockView`]s handed to
/// chamber workers share them instead of copying — block preparation
/// allocates the index lists once, here, and nothing else.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    blocks: Vec<Arc<[usize]>>,
    block_size: usize,
    gamma: usize,
    records: usize,
}

impl BlockPlan {
    /// The blocks (shared lists of record indices).
    pub fn blocks(&self) -> &[Arc<[usize]>] {
        &self.blocks
    }

    /// Total number of blocks `ℓ`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Target block size `β`.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Resampling factor `γ` (1 = the classic disjoint partition).
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// Number of records partitioned.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Sensitivity multiplier for the block-output average: a single
    /// record influences `γ` of the `ℓ` blocks, so an output range of
    /// width `s` yields average-sensitivity `γ·s/ℓ`.
    pub fn average_sensitivity(&self, output_width: f64) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.gamma as f64 * output_width / self.blocks.len() as f64
    }

    /// Builds the zero-copy [`BlockView`]s the computation manager ships
    /// to the chambers: each view is two `Arc` bumps (store + index
    /// list), so this allocates only the outer `Vec` — O(ℓ) handles, no
    /// row data, independent of γ·dataset-bytes.
    ///
    /// Panics when the plan was built for more records than `store`
    /// holds (views bounds-check their indices on construction).
    pub fn views(&self, store: &Arc<RowStore>) -> Vec<BlockView> {
        self.blocks
            .iter()
            .map(|idx| BlockView::sparse(Arc::clone(store), Arc::clone(idx)))
            .collect()
    }

    /// Bytes of index bookkeeping the plan holds — the *only* per-query
    /// block-preparation allocation on the view plane (the legacy clone
    /// plane copied `γ · payload_bytes` of row data instead).
    pub fn index_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.len() * std::mem::size_of::<usize>())
            .sum()
    }

    /// Materialises one block by deep-cloning the referenced rows.
    ///
    /// Legacy clone plane: survives only for the equivalence tests and
    /// the clone-vs-view benchmark. Query paths use [`BlockPlan::views`].
    pub fn materialize(&self, store: &RowStore, block: usize) -> Vec<Vec<f64>> {
        self.blocks[block]
            .iter()
            .map(|&i| store.row(i).to_vec())
            .collect()
    }

    /// Materialises every block by deep-cloning rows (legacy clone
    /// plane — see [`BlockPlan::materialize`]).
    pub fn materialize_all(&self, store: &RowStore) -> Vec<Vec<Vec<f64>>> {
        (0..self.blocks.len())
            .map(|b| self.materialize(store, b))
            .collect()
    }
}

/// The paper's default block size `β = ⌈n^0.6⌉` (so `ℓ ≈ n^0.4`).
pub fn default_block_size(n: usize) -> usize {
    if n == 0 {
        return 1;
    }
    ((n as f64).powf(0.6).ceil() as usize).clamp(1, n)
}

/// Fisher–Yates shuffle (rand 0.10 ships no slice shuffle in our
/// dependency set).
fn shuffle<R: Rng + ?Sized, T>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// Builds a partition plan: `gamma` independent shuffles of `0..n`, each
/// chopped into blocks of `block_size` (the final block of a round may be
/// smaller when `block_size ∤ n`).
///
/// Panics never; degenerate inputs are clamped (`block_size ∈ [1, n]`,
/// `gamma ≥ 1`). With `n == 0` the plan has no blocks.
pub fn partition<R: Rng + ?Sized>(
    n: usize,
    block_size: usize,
    gamma: usize,
    rng: &mut R,
) -> BlockPlan {
    let gamma = gamma.max(1);
    if n == 0 {
        return BlockPlan {
            blocks: Vec::new(),
            block_size: block_size.max(1),
            gamma,
            records: 0,
        };
    }
    let block_size = block_size.clamp(1, n);
    let mut blocks = Vec::with_capacity(gamma * n.div_ceil(block_size));
    for _ in 0..gamma {
        let mut order: Vec<usize> = (0..n).collect();
        shuffle(&mut order, rng);
        for chunk in order.chunks(block_size) {
            blocks.push(Arc::from(chunk));
        }
    }
    BlockPlan {
        blocks,
        block_size,
        gamma,
        records: n,
    }
}

/// Builds a *group-aware* partition plan for user-level privacy (§8.1):
/// all records of a group (user) stay together, so changing one user
/// perturbs at most `gamma` blocks and the `γ·s/ℓ` sensitivity bound
/// holds at user granularity.
///
/// `groups` lists the record indices of each group. Each of the `gamma`
/// rounds shuffles the group order and greedily packs whole groups into
/// blocks until at least `block_size` records accumulate; a group larger
/// than `block_size` becomes its own (oversized) block. Empty groups are
/// skipped.
pub fn partition_grouped<R: Rng + ?Sized>(
    groups: &[Vec<usize>],
    block_size: usize,
    gamma: usize,
    rng: &mut R,
) -> BlockPlan {
    let gamma = gamma.max(1);
    let block_size = block_size.max(1);
    let records: usize = groups.iter().map(Vec::len).sum();
    if records == 0 {
        return BlockPlan {
            blocks: Vec::new(),
            block_size,
            gamma,
            records: 0,
        };
    }
    let mut blocks: Vec<Arc<[usize]>> = Vec::new();
    for _ in 0..gamma {
        let mut order: Vec<usize> = (0..groups.len())
            .filter(|&g| !groups[g].is_empty())
            .collect();
        shuffle(&mut order, rng);
        let mut current: Vec<usize> = Vec::new();
        for &g in &order {
            current.extend_from_slice(&groups[g]);
            if current.len() >= block_size {
                blocks.push(Arc::from(std::mem::take(&mut current)));
            }
        }
        if !current.is_empty() {
            blocks.push(Arc::from(current));
        }
    }
    BlockPlan {
        blocks,
        block_size,
        gamma,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashSet;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB10C)
    }

    #[test]
    fn default_block_size_matches_paper() {
        // 26733^0.6 ≈ 453.8 → 454.
        assert_eq!(default_block_size(26_733), 454);
        assert_eq!(default_block_size(0), 1);
        assert_eq!(default_block_size(1), 1);
        // Never exceeds n.
        assert_eq!(default_block_size(2), 2);
    }

    #[test]
    fn disjoint_partition_covers_all_indices_once() {
        let plan = partition(1000, 100, 1, &mut rng());
        assert_eq!(plan.num_blocks(), 10);
        let mut seen = vec![0usize; 1000];
        for block in plan.blocks() {
            assert!(block.len() <= 100);
            for &i in block.iter() {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn resampling_each_record_in_exactly_gamma_blocks() {
        let gamma = 4;
        let plan = partition(500, 50, gamma, &mut rng());
        assert_eq!(plan.num_blocks(), gamma * 10);
        let mut counts = vec![0usize; 500];
        for block in plan.blocks() {
            // No record twice within one block.
            let set: HashSet<usize> = block.iter().copied().collect();
            assert_eq!(set.len(), block.len());
            for &i in block.iter() {
                counts[i] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == gamma));
    }

    #[test]
    fn uneven_sizes_keep_coverage() {
        let plan = partition(103, 10, 2, &mut rng());
        // Each round: 10 full blocks + 1 of size 3.
        assert_eq!(plan.num_blocks(), 22);
        let mut counts = vec![0usize; 103];
        for block in plan.blocks() {
            for &i in block.iter() {
                counts[i] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 2));
    }

    #[test]
    fn average_sensitivity_is_gamma_invariant_in_beta() {
        // Claim 1: for fixed β, sensitivity γ·s/ℓ = s·β/n independent of γ.
        let n = 1000;
        let beta = 100;
        let s = 5.0;
        for gamma in [1usize, 2, 4, 8] {
            let plan = partition(n, beta, gamma, &mut rng());
            let sens = plan.average_sensitivity(s);
            assert!(
                (sens - s * beta as f64 / n as f64).abs() < 1e-12,
                "γ={gamma}: {sens}"
            );
        }
    }

    #[test]
    fn degenerate_inputs_clamped() {
        let plan = partition(10, 0, 0, &mut rng());
        assert_eq!(plan.block_size(), 1);
        assert_eq!(plan.gamma(), 1);
        assert_eq!(plan.num_blocks(), 10);

        let empty = partition(0, 5, 2, &mut rng());
        assert_eq!(empty.num_blocks(), 0);
        assert_eq!(empty.average_sensitivity(1.0), 0.0);
    }

    #[test]
    fn block_size_larger_than_n_means_one_block_per_round() {
        let plan = partition(7, 100, 3, &mut rng());
        assert_eq!(plan.num_blocks(), 3);
        assert!(plan.blocks().iter().all(|b| b.len() == 7));
    }

    #[test]
    fn materialize_clones_correct_rows() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let store = RowStore::from_rows(&rows);
        let plan = partition(20, 5, 1, &mut rng());
        let all = plan.materialize_all(&store);
        assert_eq!(all.len(), 4);
        for (b, block) in all.iter().enumerate() {
            for (r, row) in block.iter().enumerate() {
                assert_eq!(row[0] as usize, plan.blocks()[b][r]);
            }
        }
    }

    #[test]
    fn shuffles_are_seed_deterministic() {
        let a = partition(100, 10, 2, &mut StdRng::seed_from_u64(5));
        let b = partition(100, 10, 2, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.blocks(), b.blocks());
        let c = partition(100, 10, 2, &mut StdRng::seed_from_u64(6));
        assert_ne!(a.blocks(), c.blocks());
    }

    #[test]
    fn grouped_partition_keeps_groups_atomic() {
        // 30 groups of 1-5 records each.
        let mut next = 0usize;
        let groups: Vec<Vec<usize>> = (0..30)
            .map(|g| {
                let size = g % 5 + 1;
                let ids: Vec<usize> = (next..next + size).collect();
                next += size;
                ids
            })
            .collect();
        let gamma = 3;
        let plan = partition_grouped(&groups, 8, gamma, &mut rng());
        // Every record appears exactly γ times.
        let mut counts = vec![0usize; next];
        for block in plan.blocks() {
            for &i in block.iter() {
                counts[i] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == gamma));
        // Group atomicity: all members of a group share blocks.
        for block in plan.blocks() {
            let set: HashSet<usize> = block.iter().copied().collect();
            for group in &groups {
                let present = group.iter().filter(|i| set.contains(i)).count();
                assert!(
                    present == 0 || present == group.len(),
                    "group split across blocks"
                );
            }
        }
    }

    #[test]
    fn grouped_partition_oversized_group_gets_own_block() {
        let groups = vec![(0..20).collect::<Vec<_>>(), vec![20], vec![21]];
        let plan = partition_grouped(&groups, 5, 1, &mut rng());
        // The 20-record group must be intact in one block.
        let big = plan
            .blocks()
            .iter()
            .find(|b| b.contains(&0))
            .expect("big group present");
        assert!(big.len() >= 20);
    }

    #[test]
    fn grouped_partition_empty_inputs() {
        let plan = partition_grouped(&[], 5, 2, &mut rng());
        assert_eq!(plan.num_blocks(), 0);
        let plan = partition_grouped(&[vec![], vec![]], 5, 2, &mut rng());
        assert_eq!(plan.num_blocks(), 0);
    }

    #[test]
    fn grouped_partition_sensitivity_counts_groups() {
        let groups: Vec<Vec<usize>> = (0..100).map(|g| vec![2 * g, 2 * g + 1]).collect();
        let plan = partition_grouped(&groups, 10, 2, &mut rng());
        // ℓ = γ·(200 records / 10 per block) = 40 blocks.
        assert_eq!(plan.num_blocks(), 40);
        // One *user* affects γ blocks: sensitivity = γ·s/ℓ.
        assert!((plan.average_sensitivity(5.0) - 2.0 * 5.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn shuffle_produces_permutation() {
        let mut items: Vec<usize> = (0..50).collect();
        shuffle(&mut items, &mut rng());
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
