//! Query-lifecycle telemetry (operator observability).
//!
//! A [`QueryTelemetry`] collector rides along one call to
//! [`crate::runtime::GuptRuntime::run`] and records, per pipeline stage
//! of Algorithm 1 / §3.1, wall-clock timings plus execution counters:
//! how many chambers completed / were killed, how busy the chamber-pool
//! workers were, how often block outputs hit the clamping range, and
//! what the ledger charged. The finished [`TelemetryReport`] travels on
//! [`crate::runtime::PrivateAnswer::telemetry`] and renders to a
//! stable-schema JSON document (see [`TelemetryReport::to_json`]).
//!
//! # Privacy caveat
//!
//! Telemetry is an **operator-facing side channel outside the
//! differential-privacy guarantee**. Stage durations, outcome counts
//! and clamp counters are *not* ε-protected: chamber wall-clock depends
//! on the private rows unless a padding [`gupt_sandbox::ChamberPolicy`]
//! is in force, and clamp counts reveal how many block outputs fell
//! outside the declared range. Ship telemetry to trusted operators
//! (logs, CI artifacts) — never to the analyst alongside the noisy
//! answer. The DP output itself never depends on any telemetry value.

use gupt_sandbox::PoolTrace;
use std::fmt;
use std::time::Duration;

use crate::cache::CacheStats;
use crate::computation_manager::ExecutionSummary;

/// Version of the JSON schema emitted by [`TelemetryReport::to_json`].
/// Bump when a field is added, removed or renamed.
///
/// v2 added the zero-copy data-plane counters `views_served` and
/// `bytes_materialized` to the `blocks` object. v3 added the `cache`
/// object (answer-cache hits / misses / ε recycled / evictions /
/// recovered entries / occupancy). v4 added the optional `serve` object
/// (network serve-plane counters: accepted / refused / in-flight,
/// per-principal ε spent, p50/p99 latency) — present only on reports
/// emitted by a serve plane. v5 added the `parallel` object (chamber
/// work-stealing pool counters: workers used, steal count, chamber-stage
/// wall vs cpu milliseconds).
pub const TELEMETRY_SCHEMA_VERSION: u32 = 5;

/// The six pipeline stages of one GUPT query (Algorithm 1, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Resolving ε: explicit, or derived from an accuracy goal (§5.1).
    BudgetResolution,
    /// Debiting the dataset's lifetime ledger (fail-closed).
    LedgerCharge,
    /// Choosing β, partitioning rows into ℓ·γ blocks, materialising.
    BlockPlanning,
    /// Running the untrusted program over every block in chambers (§6).
    ChamberExecution,
    /// Resolving output ranges (tight / loose / helper, §4.1).
    RangeResolution,
    /// Clamp, average, Laplace noise (Algorithm 1).
    Aggregation,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::BudgetResolution,
        Stage::LedgerCharge,
        Stage::BlockPlanning,
        Stage::ChamberExecution,
        Stage::RangeResolution,
        Stage::Aggregation,
    ];

    /// Stable snake_case key used in the JSON schema.
    pub fn key(self) -> &'static str {
        match self {
            Stage::BudgetResolution => "budget_resolution",
            Stage::LedgerCharge => "ledger_charge",
            Stage::BlockPlanning => "block_planning",
            Stage::ChamberExecution => "chamber_execution",
            Stage::RangeResolution => "range_resolution",
            Stage::Aggregation => "aggregation",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::BudgetResolution => 0,
            Stage::LedgerCharge => 1,
            Stage::BlockPlanning => 2,
            Stage::ChamberExecution => 3,
            Stage::RangeResolution => 4,
            Stage::Aggregation => 5,
        }
    }
}

/// One recorded stage timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// Which stage.
    pub stage: Stage,
    /// Wall-clock duration spent in it.
    pub duration: Duration,
}

/// Counters from the chambered execution of one query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockCounters {
    /// Blocks dispatched to chambers (ℓ·γ).
    pub run: usize,
    /// Blocks whose program completed normally.
    pub completed: usize,
    /// Blocks killed for exceeding the execution budget.
    pub timed_out: usize,
    /// Blocks whose program panicked.
    pub panicked: usize,
    /// Worker threads the pool actually used.
    pub workers: usize,
    /// Fraction of `workers × wall` the workers spent inside chambers
    /// (1.0 = perfectly packed). 0 when nothing ran.
    pub worker_utilization: f64,
    /// Zero-copy block views dispatched to chambers during block
    /// preparation (ℓ·γ on the view plane).
    pub views_served: usize,
    /// Bytes of index bookkeeping copied while preparing blocks — the
    /// *entire* data-plane allocation of the query. The legacy clone
    /// plane would have copied `γ ×` the dataset's row bytes instead.
    pub bytes_materialized: usize,
}

/// The ledger's view of one query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LedgerEvent {
    /// ε the query asked for (explicit, or resolved from the goal).
    pub epsilon_requested: f64,
    /// ε actually debited (equals `epsilon_requested` today; kept
    /// separate so charge-rounding policies stay observable).
    pub epsilon_charged: f64,
    /// Lifetime budget left on the dataset *after* the charge.
    pub remaining_budget: f64,
}

/// Work-stealing chamber-pool counters for one query (schema v5
/// `parallel` object). `wall_ms` is the chamber-execution stage's
/// wall clock; `cpu_ms` is the sum of per-worker busy time — their
/// ratio exposes how well the parallel fan-out packed the workers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ParallelTelemetry {
    /// Worker threads the pool actually used for the query.
    pub workers: usize,
    /// Tasks a worker stole from a sibling's deque (0 on the
    /// sequential fast path).
    pub steals: u64,
    /// Wall-clock milliseconds of the chamber-execution stage.
    pub wall_ms: f64,
    /// Cumulative busy (cpu) milliseconds across all workers.
    pub cpu_ms: f64,
}

impl ParallelTelemetry {
    /// Renders the schema-v5 `parallel` object (the value only, no key).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"steals\":{},\"wall_ms\":{},\"cpu_ms\":{}}}",
            self.workers,
            self.steals,
            json_f64(self.wall_ms),
            json_f64(self.cpu_ms)
        )
    }
}

/// Serve-plane counters attached to telemetry emitted by a network
/// front door (schema v4 `serve` object). Per-query reports from a bare
/// runtime never carry one.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeTelemetry {
    /// Requests the serve plane accepted for execution.
    pub accepted: u64,
    /// Requests refused (overload, deadline, quota, bad request…).
    pub refused: u64,
    /// Requests executing at snapshot time.
    pub in_flight: usize,
    /// ε spent per principal, sorted by name. Principal names are
    /// validated ASCII (`[A-Za-z0-9._@-]`), so they embed in JSON
    /// without escaping.
    pub principals: Vec<(String, f64)>,
    /// Median end-to-end request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end request latency in milliseconds.
    pub p99_ms: f64,
}

impl ServeTelemetry {
    /// Renders the schema-v4 `serve` object (the value only, no key).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!(
            "{{\"accepted\":{},\"refused\":{},\"in_flight\":{},\"principals\":{{",
            self.accepted, self.refused, self.in_flight
        ));
        for (i, (name, spent)) in self.principals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", json_f64(*spent)));
        }
        out.push_str(&format!(
            "}},\"p50_ms\":{},\"p99_ms\":{}}}",
            json_f64(self.p50_ms),
            json_f64(self.p99_ms)
        ));
        out
    }
}

/// The finished, immutable telemetry of one query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// One entry per pipeline stage, in pipeline order.
    pub stages: Vec<StageTiming>,
    /// Chamber execution counters.
    pub blocks: BlockCounters,
    /// Per-output-dimension count of block outputs that fell outside
    /// the resolved range (and were therefore clamped by Algorithm 1).
    pub clamp_hits: Vec<usize>,
    /// What the privacy ledger recorded.
    pub ledger: LedgerEvent,
    /// Runtime-wide answer-cache counters at the moment the query
    /// finished (a cache *hit* reports with empty `stages` — nothing but
    /// the lookup ran).
    pub cache: CacheStats,
    /// Work-stealing chamber-pool counters (all-zero on a cache hit —
    /// no chamber ran).
    pub parallel: ParallelTelemetry,
    /// Serve-plane counters, attached only by a network front door
    /// (`None` on reports from a bare runtime).
    pub serve: Option<ServeTelemetry>,
    /// End-to-end wall clock of the query.
    pub total: Duration,
}

impl TelemetryReport {
    /// Duration of one stage, if it was recorded.
    pub fn stage(&self, stage: Stage) -> Option<Duration> {
        self.stages
            .iter()
            .find(|t| t.stage == stage)
            .map(|t| t.duration)
    }

    /// Renders the stable-schema JSON document (single line).
    ///
    /// Schema (version [`TELEMETRY_SCHEMA_VERSION`]): an object with
    /// `schema_version`, `total_ms`, `stages` (object keyed by
    /// [`Stage::key`] + `_ms`, always all six keys), `blocks`
    /// (`run`/`completed`/`timed_out`/`panicked`/`workers`/
    /// `worker_utilization`/`views_served`/`bytes_materialized`),
    /// `clamp_hits` (array, one count per output
    /// dimension), `ledger` (`epsilon_requested`/`epsilon_charged`/
    /// `remaining_budget`), `cache` (`hits`/`misses`/`epsilon_saved`/
    /// `evictions`/`recovered_entries`/`entries`/`capacity`), `parallel`
    /// (`workers`/`steals`/`wall_ms`/`cpu_ms`) and — when
    /// the report came from a serve plane — `serve` (`accepted`/
    /// `refused`/`in_flight`/`principals`/`p50_ms`/`p99_ms`). Non-finite
    /// floats render as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"schema_version\":{},\"total_ms\":{}",
            TELEMETRY_SCHEMA_VERSION,
            json_f64(ms(self.total))
        ));
        out.push_str(",\"stages\":{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let d = self.stage(*stage).unwrap_or(Duration::ZERO);
            out.push_str(&format!("\"{}_ms\":{}", stage.key(), json_f64(ms(d))));
        }
        out.push_str(&format!(
            "}},\"blocks\":{{\"run\":{},\"completed\":{},\"timed_out\":{},\
             \"panicked\":{},\"workers\":{},\"worker_utilization\":{},\
             \"views_served\":{},\"bytes_materialized\":{}}}",
            self.blocks.run,
            self.blocks.completed,
            self.blocks.timed_out,
            self.blocks.panicked,
            self.blocks.workers,
            json_f64(self.blocks.worker_utilization),
            self.blocks.views_served,
            self.blocks.bytes_materialized
        ));
        out.push_str(",\"clamp_hits\":[");
        for (i, c) in self.clamp_hits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str(&format!(
            "],\"ledger\":{{\"epsilon_requested\":{},\"epsilon_charged\":{},\
             \"remaining_budget\":{}}}",
            json_f64(self.ledger.epsilon_requested),
            json_f64(self.ledger.epsilon_charged),
            json_f64(self.ledger.remaining_budget)
        ));
        out.push_str(&format!(
            ",\"cache\":{{\"hits\":{},\"misses\":{},\"epsilon_saved\":{},\
             \"evictions\":{},\"recovered_entries\":{},\"entries\":{},\
             \"capacity\":{}}}",
            self.cache.hits,
            self.cache.misses,
            json_f64(self.cache.epsilon_saved),
            self.cache.evictions,
            self.cache.recovered_entries,
            self.cache.entries,
            self.cache.capacity
        ));
        out.push_str(",\"parallel\":");
        out.push_str(&self.parallel.to_json());
        if let Some(serve) = &self.serve {
            out.push_str(",\"serve\":");
            out.push_str(&serve.to_json());
        }
        out.push('}');
        out
    }
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "telemetry ({:.3} ms total):", ms(self.total))?;
        for t in &self.stages {
            writeln!(f, "  {:<18} {:>10.3} ms", t.stage.key(), ms(t.duration))?;
        }
        writeln!(
            f,
            "  blocks: {} run ({} ok, {} timed out, {} panicked), \
             {} workers at {:.0}% utilization",
            self.blocks.run,
            self.blocks.completed,
            self.blocks.timed_out,
            self.blocks.panicked,
            self.blocks.workers,
            self.blocks.worker_utilization * 100.0
        )?;
        writeln!(
            f,
            "  data plane: {} views served, {} index bytes materialized",
            self.blocks.views_served, self.blocks.bytes_materialized
        )?;
        writeln!(
            f,
            "  parallel: {} workers, {} steals, {:.3} ms wall / {:.3} ms cpu",
            self.parallel.workers,
            self.parallel.steals,
            self.parallel.wall_ms,
            self.parallel.cpu_ms
        )?;
        writeln!(f, "  clamp hits/dim: {:?}", self.clamp_hits)?;
        writeln!(
            f,
            "  ledger: requested ε={}, charged ε={}, remaining {}",
            self.ledger.epsilon_requested,
            self.ledger.epsilon_charged,
            self.ledger.remaining_budget
        )?;
        writeln!(
            f,
            "  cache: {} hits / {} misses, ε saved {:.4}, {} evictions, \
             {} recovered, {}/{} entries",
            self.cache.hits,
            self.cache.misses,
            self.cache.epsilon_saved,
            self.cache.evictions,
            self.cache.recovered_entries,
            self.cache.entries,
            self.cache.capacity
        )
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// JSON-safe float rendering: finite values verbatim, otherwise `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` on f64 is shortest-roundtrip and never produces
        // exponents for the magnitudes telemetry deals in.
        let s = format!("{v}");
        if s.contains(['e', 'E']) {
            format!("{v:.12}")
        } else {
            s
        }
    } else {
        "null".to_string()
    }
}

/// Per-query telemetry collector threaded through the runtime.
///
/// A disabled collector ([`QueryTelemetry::disabled`]) records nothing
/// and [`QueryTelemetry::finish`] returns `None`, so the telemetry-off
/// path allocates no events.
#[derive(Debug)]
pub struct QueryTelemetry {
    enabled: bool,
    stage_totals: [Duration; 6],
    stage_seen: [bool; 6],
    blocks: BlockCounters,
    clamp_hits: Vec<usize>,
    ledger: LedgerEvent,
    cache: CacheStats,
    parallel: ParallelTelemetry,
}

impl QueryTelemetry {
    /// A collector that records.
    pub fn enabled() -> Self {
        QueryTelemetry {
            enabled: true,
            stage_totals: [Duration::ZERO; 6],
            stage_seen: [false; 6],
            blocks: BlockCounters::default(),
            clamp_hits: Vec::new(),
            ledger: LedgerEvent::default(),
            cache: CacheStats::default(),
            parallel: ParallelTelemetry::default(),
        }
    }

    /// A collector that drops everything.
    pub fn disabled() -> Self {
        QueryTelemetry {
            enabled: false,
            stage_totals: [Duration::ZERO; 6],
            stage_seen: [false; 6],
            blocks: BlockCounters::default(),
            clamp_hits: Vec::new(),
            ledger: LedgerEvent::default(),
            cache: CacheStats::default(),
            parallel: ParallelTelemetry::default(),
        }
    }

    /// Builds a collector from a flag.
    pub fn new(collect: bool) -> Self {
        if collect {
            QueryTelemetry::enabled()
        } else {
            QueryTelemetry::disabled()
        }
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of stage events recorded so far.
    pub fn event_count(&self) -> usize {
        self.stage_seen.iter().filter(|s| **s).count()
    }

    /// Adds `duration` to a stage (a stage timed in several segments —
    /// e.g. block planning split around budget resolution — still
    /// reports as one event).
    pub fn record_stage(&mut self, stage: Stage, duration: Duration) {
        if !self.enabled {
            return;
        }
        self.stage_totals[stage.index()] += duration;
        self.stage_seen[stage.index()] = true;
    }

    /// Records data-plane counters from block preparation: how many
    /// zero-copy views were built and how many index-bookkeeping bytes
    /// that cost. Call before [`QueryTelemetry::record_blocks`] — both
    /// write into the same [`BlockCounters`] without clobbering each
    /// other's fields.
    pub fn record_block_prep(&mut self, views_served: usize, bytes_materialized: usize) {
        if !self.enabled {
            return;
        }
        self.blocks.views_served = views_served;
        self.blocks.bytes_materialized = bytes_materialized;
    }

    /// Records chamber-execution counters from the run's
    /// [`ExecutionSummary`] and the pool's [`PoolTrace`].
    pub fn record_blocks(&mut self, summary: &ExecutionSummary, trace: &PoolTrace) {
        if !self.enabled {
            return;
        }
        self.blocks.run = summary.total();
        self.blocks.completed = summary.completed;
        self.blocks.timed_out = summary.timed_out;
        self.blocks.panicked = summary.panicked;
        self.blocks.workers = trace.workers_used;
        self.blocks.worker_utilization = trace.utilization();
        self.parallel = ParallelTelemetry {
            workers: trace.workers_used,
            steals: trace.steals,
            wall_ms: ms(trace.wall),
            cpu_ms: ms(trace.cpu()),
        };
    }

    /// Records per-dimension clamp-hit counts.
    pub fn record_clamp_hits(&mut self, hits: Vec<usize>) {
        if !self.enabled {
            return;
        }
        self.clamp_hits = hits;
    }

    /// Records the ledger's view of the query.
    pub fn record_ledger(&mut self, event: LedgerEvent) {
        if !self.enabled {
            return;
        }
        self.ledger = event;
    }

    /// Records the runtime-wide answer-cache counters.
    pub fn record_cache(&mut self, stats: CacheStats) {
        if !self.enabled {
            return;
        }
        self.cache = stats;
    }

    /// Seals the collector. Returns `None` when disabled.
    pub fn finish(self, total: Duration) -> Option<TelemetryReport> {
        if !self.enabled {
            return None;
        }
        let stages = Stage::ALL
            .iter()
            .filter(|s| self.stage_seen[s.index()])
            .map(|s| StageTiming {
                stage: *s,
                duration: self.stage_totals[s.index()],
            })
            .collect();
        Some(TelemetryReport {
            stages,
            blocks: self.blocks,
            clamp_hits: self.clamp_hits,
            ledger: self.ledger,
            cache: self.cache,
            parallel: self.parallel,
            serve: None,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TelemetryReport {
        let mut tel = QueryTelemetry::enabled();
        for (i, s) in Stage::ALL.iter().enumerate() {
            tel.record_stage(*s, Duration::from_millis(i as u64 + 1));
        }
        tel.record_block_prep(10, 800);
        tel.record_blocks(
            &ExecutionSummary {
                completed: 8,
                timed_out: 1,
                panicked: 1,
            },
            &PoolTrace {
                wall: Duration::from_millis(100),
                workers_used: 4,
                busy: vec![Duration::from_millis(80); 4],
                steals: 3,
            },
        );
        tel.record_clamp_hits(vec![3, 0]);
        tel.record_ledger(LedgerEvent {
            epsilon_requested: 2.0,
            epsilon_charged: 2.0,
            remaining_budget: 8.0,
        });
        tel.record_cache(CacheStats {
            hits: 3,
            misses: 5,
            epsilon_saved: 1.5,
            evictions: 1,
            recovered_entries: 2,
            entries: 4,
            capacity: 256,
        });
        tel.finish(Duration::from_millis(25)).unwrap()
    }

    #[test]
    fn records_one_event_per_stage() {
        let report = sample_report();
        assert_eq!(report.stages.len(), Stage::ALL.len());
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(report.stage(*s), Some(Duration::from_millis(i as u64 + 1)));
        }
    }

    #[test]
    fn multi_segment_stage_is_one_event() {
        let mut tel = QueryTelemetry::enabled();
        tel.record_stage(Stage::BlockPlanning, Duration::from_millis(2));
        tel.record_stage(Stage::BlockPlanning, Duration::from_millis(3));
        assert_eq!(tel.event_count(), 1);
        let report = tel.finish(Duration::from_millis(5)).unwrap();
        assert_eq!(report.stages.len(), 1);
        assert_eq!(
            report.stage(Stage::BlockPlanning),
            Some(Duration::from_millis(5))
        );
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut tel = QueryTelemetry::disabled();
        tel.record_stage(Stage::Aggregation, Duration::from_millis(1));
        tel.record_clamp_hits(vec![1]);
        tel.record_ledger(LedgerEvent {
            epsilon_requested: 1.0,
            epsilon_charged: 1.0,
            remaining_budget: 0.0,
        });
        assert_eq!(tel.event_count(), 0);
        assert!(tel.finish(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn utilization_from_trace() {
        let report = sample_report();
        // 4 × 80ms busy over 4 × 100ms wall.
        assert!((report.blocks.worker_utilization - 0.8).abs() < 1e-12);
        assert_eq!(report.blocks.run, 10);
    }

    #[test]
    fn block_prep_counters_survive_record_blocks() {
        // record_block_prep runs first in the pipeline; record_blocks
        // must not clobber its fields (and vice versa).
        let report = sample_report();
        assert_eq!(report.blocks.views_served, 10);
        assert_eq!(report.blocks.bytes_materialized, 800);
        assert_eq!(report.blocks.workers, 4);
    }

    #[test]
    fn disabled_collector_ignores_block_prep() {
        let mut tel = QueryTelemetry::disabled();
        tel.record_block_prep(5, 100);
        assert!(tel.finish(Duration::ZERO).is_none());
    }

    #[test]
    fn json_has_all_schema_fields() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"schema_version\":5",
            "\"total_ms\":",
            "\"stages\":{",
            "\"blocks\":{",
            "\"clamp_hits\":[3,0]",
            "\"ledger\":{",
            "\"epsilon_requested\":2",
            "\"remaining_budget\":8",
            "\"run\":10",
            "\"timed_out\":1",
            "\"worker_utilization\":0.7999999999999999",
            "\"views_served\":10",
            "\"bytes_materialized\":800",
            "\"cache\":{",
            "\"hits\":3",
            "\"misses\":5",
            "\"epsilon_saved\":1.5",
            "\"evictions\":1",
            "\"recovered_entries\":2",
            "\"entries\":4",
            "\"capacity\":256",
            "\"parallel\":{\"workers\":4,\"steals\":3,\"wall_ms\":100,\"cpu_ms\":320}",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        for s in Stage::ALL {
            assert!(json.contains(&format!("\"{}_ms\":", s.key())), "{json}");
        }
    }

    #[test]
    fn parallel_object_defaults_to_zero_on_cache_hits() {
        // A cache hit never runs chambers: record_blocks is skipped and
        // the parallel object renders all-zero rather than disappearing.
        let tel = QueryTelemetry::enabled();
        let json = tel.finish(Duration::ZERO).unwrap().to_json();
        assert!(
            json.contains("\"parallel\":{\"workers\":0,\"steals\":0,\"wall_ms\":0,\"cpu_ms\":0}"),
            "{json}"
        );
    }

    #[test]
    fn serve_object_absent_on_bare_runtime_reports() {
        let json = sample_report().to_json();
        assert!(!json.contains("\"serve\""), "{json}");
    }

    #[test]
    fn serve_object_renders_when_attached() {
        let mut report = sample_report();
        report.serve = Some(ServeTelemetry {
            accepted: 1900,
            refused: 100,
            in_flight: 7,
            principals: vec![("alice".into(), 1.25), ("svc@batch".into(), 0.5)],
            p50_ms: 3.5,
            p99_ms: 42.0,
        });
        let json = report.to_json();
        for key in [
            "\"serve\":{",
            "\"accepted\":1900",
            "\"refused\":100",
            "\"in_flight\":7",
            "\"principals\":{\"alice\":1.25,\"svc@batch\":0.5}",
            "\"p50_ms\":3.5",
            "\"p99_ms\":42",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The serve object nests inside the report's closing brace.
        assert!(json.ends_with("}}"), "{json}");
    }

    #[test]
    fn json_stage_keys_present_even_when_unrecorded() {
        let tel = QueryTelemetry::enabled();
        let json = tel.finish(Duration::ZERO).unwrap().to_json();
        // All six stage keys appear (as 0) so the schema is stable.
        for s in Stage::ALL {
            assert!(json.contains(&format!("\"{}_ms\":0", s.key())), "{json}");
        }
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }

    #[test]
    fn tiny_floats_avoid_exponent_notation() {
        let s = json_f64(1e-9);
        assert!(!s.contains(['e', 'E']), "{s}");
    }

    #[test]
    fn display_renders() {
        let text = sample_report().to_string();
        assert!(text.contains("telemetry ("), "{text}");
        assert!(text.contains("chamber_execution"), "{text}");
        assert!(text.contains("clamp hits/dim"), "{text}");
        assert!(text.contains("views served"), "{text}");
        assert!(text.contains("cache: 3 hits / 5 misses"), "{text}");
        assert!(text.contains("parallel: 4 workers, 3 steals"), "{text}");
    }

    #[test]
    fn disabled_collector_ignores_cache() {
        let mut tel = QueryTelemetry::disabled();
        tel.record_cache(CacheStats {
            hits: 1,
            ..CacheStats::default()
        });
        assert!(tel.finish(Duration::ZERO).is_none());
    }
}
