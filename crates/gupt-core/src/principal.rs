//! Multi-tenant principals: per-principal ε quotas carved from one
//! dataset's lifetime ledger.
//!
//! The paper treats the privacy budget as a single per-dataset resource
//! (§3.1, §5.2). A real deployment fronts that dataset for *many*
//! analysts — tenants, teams, service accounts — and wants each one
//! held to its own slice of the lifetime ε. A **principal** is such a
//! tenant: a named account with a quota carved from the dataset ledger.
//!
//! Quotas are **admission bookkeeping layered on top of the privacy
//! guarantee, never a substitute for it**: every attributed charge still
//! debits the dataset's [`gupt_dp::PrivacyLedger`] first (fail-closed,
//! WAL-journaled when durable), so the lifetime ε bound holds no matter
//! what the quota table says. What the table adds is *attribution* —
//! which principal spent what — and *refusal* once a principal's slice
//! is gone, governed by an [`ExhaustedPolicy`]:
//!
//! - [`ExhaustedPolicy::HardStop`] refuses over-quota charges outright;
//!   the principal can resume only if an operator grants more quota.
//! - [`ExhaustedPolicy::PauseApproval`] additionally marks the principal
//!   **paused**: every further charge is refused until an operator
//!   explicitly continues it (optionally granting more quota) through
//!   [`PrincipalTable::continue_principal`] — the serve plane exposes
//!   this as its admin `continue` endpoint.
//!
//! Continuing a paused principal never resets its `spent` — ε already
//! released is released forever; the operator can only raise the quota
//! going forward. Attributed debits are journaled through the dataset's
//! WAL (see [`crate::storage`]), so a killed server recovers every
//! principal's books together with the dataset ledger, erring — like all
//! recovery here — toward *more* spent, never less.

use crate::error::GuptError;
use crate::storage::PrincipalBooks;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// What happens when a charge would push a principal past its quota.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExhaustedPolicy {
    /// Refuse the charge with [`GuptError::QuotaExhausted`]; later
    /// charges that fit a raised quota succeed again without operator
    /// action.
    #[default]
    HardStop,
    /// Refuse the charge *and* pause the principal: every subsequent
    /// charge is refused until an operator continues it (see
    /// [`PrincipalTable::continue_principal`]).
    PauseApproval,
}

/// Point-in-time books for one principal.
#[derive(Debug, Clone, PartialEq)]
pub struct PrincipalState {
    /// The principal's name.
    pub name: String,
    /// Quota carved from the dataset ledger (ε this principal may
    /// spend).
    pub quota: f64,
    /// ε this principal has spent, including recovered spend. May
    /// exceed `quota` after a conservative recovery or a quota
    /// reduction — never reset.
    pub spent: f64,
    /// Successful attributed charges, including recovered ones.
    pub queries: u64,
    /// Whether the principal is paused awaiting an operator `continue`
    /// (only set under [`ExhaustedPolicy::PauseApproval`]).
    pub paused: bool,
}

impl PrincipalState {
    /// Quota left (clamped at zero).
    pub fn remaining(&self) -> f64 {
        (self.quota - self.spent).max(0.0)
    }
}

#[derive(Debug, Clone, Default)]
struct Books {
    quota: f64,
    spent: f64,
    queries: u64,
    paused: bool,
}

/// Validates a principal name: the name travels through the WAL and the
/// wire protocol, so it is held to the same conservative alphabet as
/// dataset file stems, plus `@` for service-account style names.
pub fn validate_principal_name(name: &str) -> Result<(), GuptError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '@'));
    if ok {
        Ok(())
    } else {
        Err(GuptError::InvalidSpec(format!(
            "principal name {name:?} is invalid (1-128 ASCII letters, digits, '-', '_', '.', '@')"
        )))
    }
}

/// The per-dataset principal ledger: quotas, attributed spend and the
/// pause flags, behind one mutex so a quota check and its debit are
/// atomic against concurrent analysts.
#[derive(Debug)]
pub struct PrincipalTable {
    policy: ExhaustedPolicy,
    books: Mutex<BTreeMap<String, Books>>,
}

fn lock_books(
    books: &Mutex<BTreeMap<String, Books>>,
) -> std::sync::MutexGuard<'_, BTreeMap<String, Books>> {
    books.lock().unwrap_or_else(|p| p.into_inner())
}

impl PrincipalTable {
    /// An empty table under `policy`.
    pub fn new(policy: ExhaustedPolicy) -> Self {
        PrincipalTable {
            policy,
            books: Mutex::new(BTreeMap::new()),
        }
    }

    /// The exhausted-budget policy in force.
    pub fn policy(&self) -> ExhaustedPolicy {
        self.policy
    }

    /// Registers `name` with `quota`. Re-registering a name already
    /// present (e.g. one recovery seeded from the WAL) sets its quota;
    /// spend and query counts are preserved.
    pub fn register(&self, name: &str, quota: f64) -> Result<(), GuptError> {
        validate_principal_name(name)?;
        if !quota.is_finite() || quota < 0.0 {
            return Err(GuptError::InvalidSpec(format!(
                "principal {name:?} quota {quota} must be finite and non-negative"
            )));
        }
        let mut books = lock_books(&self.books);
        books.entry(name.to_string()).or_default().quota = quota;
        Ok(())
    }

    /// Merges recovered spend into the table. Principals found in the
    /// WAL but never (re-)registered keep a zero quota: their history is
    /// preserved and every new charge is refused until an operator
    /// grants quota — the never-under-report rule applied to tenants.
    pub fn absorb_recovered(&self, name: &str, spent: f64, queries: u64) {
        let mut books = lock_books(&self.books);
        let entry = books.entry(name.to_string()).or_default();
        entry.spent += spent.max(0.0);
        entry.queries += queries;
    }

    /// Whether any principal is registered or recovered.
    pub fn is_empty(&self) -> bool {
        lock_books(&self.books).is_empty()
    }

    /// Snapshot of every principal's books, sorted by name.
    pub fn states(&self) -> Vec<PrincipalState> {
        lock_books(&self.books)
            .iter()
            .map(|(name, b)| PrincipalState {
                name: name.clone(),
                quota: b.quota,
                spent: b.spent,
                queries: b.queries,
                paused: b.paused,
            })
            .collect()
    }

    /// One principal's books.
    pub fn state(&self, name: &str) -> Result<PrincipalState, GuptError> {
        lock_books(&self.books)
            .get(name)
            .map(|b| PrincipalState {
                name: name.to_string(),
                quota: b.quota,
                spent: b.spent,
                queries: b.queries,
                paused: b.paused,
            })
            .ok_or_else(|| GuptError::UnknownPrincipal(name.to_string()))
    }

    /// Per-principal compacted books, for snapshot compaction during an
    /// *unattributed* charge (never call while holding the books lock —
    /// attributed charges get their books through
    /// [`PrincipalTable::charge_with`]'s closure instead).
    pub(crate) fn spent_books(&self) -> BTreeMap<String, PrincipalBooks> {
        lock_books(&self.books)
            .iter()
            .map(|(name, b)| {
                (
                    name.clone(),
                    PrincipalBooks {
                        spent: b.spent,
                        queries: b.queries,
                    },
                )
            })
            .collect()
    }

    /// Atomically: check `name`'s quota covers `eps`, run `debit` (the
    /// dataset-ledger charge, WAL append included), and on its success
    /// record the attributed spend. The books lock is held throughout so
    /// two concurrent charges cannot both pass the same quota check.
    ///
    /// `debit` receives the books *as they will read once this charge
    /// lands* — exactly what a WAL compaction triggered inside the debit
    /// must persist, because the attributed record being compacted away
    /// is already in the log by then. Lock order is books → store,
    /// always.
    ///
    /// Refusals are typed: an unknown name is
    /// [`GuptError::UnknownPrincipal`]; a paused or over-quota principal
    /// is [`GuptError::QuotaExhausted`] (with `paused` reporting whether
    /// an operator `continue` is now required). The quota check uses the
    /// same one-ulp slop as [`gupt_dp::PrivacyLedger`] so a quota split
    /// into equal shares can be fully consumed.
    pub(crate) fn charge_with<F>(&self, name: &str, eps: f64, debit: F) -> Result<(), GuptError>
    where
        F: FnOnce(&BTreeMap<String, PrincipalBooks>) -> Result<(), GuptError>,
    {
        let mut books = lock_books(&self.books);
        {
            let entry = books
                .get_mut(name)
                .ok_or_else(|| GuptError::UnknownPrincipal(name.to_string()))?;
            let remaining = (entry.quota - entry.spent).max(0.0);
            if entry.paused {
                return Err(GuptError::QuotaExhausted {
                    principal: name.to_string(),
                    requested: eps,
                    remaining,
                    paused: true,
                });
            }
            if entry.spent + eps > entry.quota * (1.0 + 1e-12) {
                let paused = self.policy == ExhaustedPolicy::PauseApproval;
                entry.paused = paused;
                return Err(GuptError::QuotaExhausted {
                    principal: name.to_string(),
                    requested: eps,
                    remaining,
                    paused,
                });
            }
        }
        let mut books_after: BTreeMap<String, PrincipalBooks> = books
            .iter()
            .map(|(n, b)| {
                (
                    n.clone(),
                    PrincipalBooks {
                        spent: b.spent,
                        queries: b.queries,
                    },
                )
            })
            .collect();
        {
            let pending = books_after.get_mut(name).expect("checked above");
            pending.spent += eps;
            pending.queries += 1;
        }
        debit(&books_after)?;
        let entry = books.get_mut(name).expect("checked above");
        entry.spent += eps;
        entry.queries += 1;
        Ok(())
    }

    /// Operator `continue`: unpauses `name` and, when `grant` is given,
    /// raises its quota by that much. Spend is never reset — released ε
    /// is released forever; the grant only extends the forward
    /// allowance. Returns the resulting books.
    pub fn continue_principal(
        &self,
        name: &str,
        grant: Option<f64>,
    ) -> Result<PrincipalState, GuptError> {
        if let Some(g) = grant {
            if !g.is_finite() || g < 0.0 {
                return Err(GuptError::InvalidSpec(format!(
                    "continue grant {g} must be finite and non-negative"
                )));
            }
        }
        let mut books = lock_books(&self.books);
        let entry = books
            .get_mut(name)
            .ok_or_else(|| GuptError::UnknownPrincipal(name.to_string()))?;
        entry.paused = false;
        if let Some(g) = grant {
            entry.quota += g;
        }
        Ok(PrincipalState {
            name: name.to_string(),
            quota: entry.quota,
            spent: entry.spent,
            queries: entry.queries,
            paused: entry.paused,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(policy: ExhaustedPolicy) -> PrincipalTable {
        let t = PrincipalTable::new(policy);
        t.register("alice", 1.0).unwrap();
        t.register("bob", 0.5).unwrap();
        t
    }

    #[test]
    fn register_and_inspect() {
        let t = table(ExhaustedPolicy::HardStop);
        assert!(!t.is_empty());
        let states = t.states();
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].name, "alice");
        assert_eq!(states[0].quota, 1.0);
        assert_eq!(states[0].remaining(), 1.0);
        assert!(!states[0].paused);
        assert!(matches!(
            t.state("mallory").unwrap_err(),
            GuptError::UnknownPrincipal(_)
        ));
    }

    #[test]
    fn invalid_names_and_quotas_rejected() {
        let t = PrincipalTable::new(ExhaustedPolicy::HardStop);
        for bad in ["", "a b", "ü", "a/b", &"x".repeat(129)] {
            assert!(t.register(bad, 1.0).is_err(), "{bad:?} accepted");
        }
        assert!(t.register("ok", f64::NAN).is_err());
        assert!(t.register("ok", -1.0).is_err());
        assert!(t.register("svc@team.prod-1", 1.0).is_ok());
    }

    #[test]
    fn charge_attributes_and_enforces_quota() {
        let t = table(ExhaustedPolicy::HardStop);
        t.charge_with("alice", 0.6, |_| Ok(())).unwrap();
        let err = t.charge_with("alice", 0.6, |_| Ok(())).unwrap_err();
        let GuptError::QuotaExhausted {
            principal,
            requested,
            remaining,
            paused,
        } = err
        else {
            panic!("expected QuotaExhausted");
        };
        assert_eq!(principal, "alice");
        assert_eq!(requested, 0.6);
        assert!((remaining - 0.4).abs() < 1e-12);
        assert!(!paused, "hard_stop never pauses");
        // A charge that fits still succeeds after the refusal.
        t.charge_with("alice", 0.4, |_| Ok(())).unwrap();
        let state = t.state("alice").unwrap();
        assert!((state.spent - 1.0).abs() < 1e-12);
        assert_eq!(state.queries, 2);
    }

    #[test]
    fn failed_debit_does_not_attribute() {
        let t = table(ExhaustedPolicy::HardStop);
        let err = t
            .charge_with("bob", 0.1, |_| {
                Err(GuptError::InvalidSpec("dataset said no".into()))
            })
            .unwrap_err();
        assert!(matches!(err, GuptError::InvalidSpec(_)));
        let state = t.state("bob").unwrap();
        assert_eq!(state.spent, 0.0);
        assert_eq!(state.queries, 0);
    }

    #[test]
    fn unknown_principal_refused() {
        let t = table(ExhaustedPolicy::HardStop);
        assert!(matches!(
            t.charge_with("mallory", 0.1, |_| Ok(())).unwrap_err(),
            GuptError::UnknownPrincipal(_)
        ));
    }

    #[test]
    fn pause_approval_pauses_until_continue() {
        let t = table(ExhaustedPolicy::PauseApproval);
        let err = t.charge_with("bob", 0.6, |_| Ok(())).unwrap_err();
        assert!(matches!(
            err,
            GuptError::QuotaExhausted { paused: true, .. }
        ));
        // Even an affordable charge is refused while paused.
        let err = t.charge_with("bob", 0.1, |_| Ok(())).unwrap_err();
        assert!(matches!(
            err,
            GuptError::QuotaExhausted { paused: true, .. }
        ));

        let state = t.continue_principal("bob", Some(1.0)).unwrap();
        assert!(!state.paused);
        assert!((state.quota - 1.5).abs() < 1e-12);
        t.charge_with("bob", 0.6, |_| Ok(())).unwrap();
    }

    #[test]
    fn continue_never_resets_spend() {
        let t = table(ExhaustedPolicy::PauseApproval);
        t.charge_with("alice", 1.0, |_| Ok(())).unwrap();
        let _ = t.charge_with("alice", 0.1, |_| Ok(())).unwrap_err();
        let state = t.continue_principal("alice", None).unwrap();
        assert_eq!(state.spent, 1.0, "spend survives continue");
        // No grant: the next over-quota charge pauses again.
        let err = t.charge_with("alice", 0.1, |_| Ok(())).unwrap_err();
        assert!(matches!(
            err,
            GuptError::QuotaExhausted { paused: true, .. }
        ));
        assert!(t.continue_principal("alice", Some(f64::NAN)).is_err());
    }

    #[test]
    fn recovered_spend_counts_against_quota() {
        let t = PrincipalTable::new(ExhaustedPolicy::HardStop);
        t.absorb_recovered("carol", 0.75, 3);
        // Unregistered survivor: zero quota, history preserved.
        let state = t.state("carol").unwrap();
        assert_eq!(state.quota, 0.0);
        assert_eq!(state.queries, 3);
        assert!(matches!(
            t.charge_with("carol", 0.1, |_| Ok(())).unwrap_err(),
            GuptError::QuotaExhausted { .. }
        ));
        // Registration restores the quota without erasing the spend.
        t.register("carol", 1.0).unwrap();
        let state = t.state("carol").unwrap();
        assert!((state.remaining() - 0.25).abs() < 1e-12);
        t.charge_with("carol", 0.25, |_| Ok(())).unwrap();
        assert!(t.charge_with("carol", 0.1, |_| Ok(())).is_err());
    }

    #[test]
    fn split_quota_fully_consumable() {
        let t = PrincipalTable::new(ExhaustedPolicy::HardStop);
        t.register("d", 0.7).unwrap();
        let share = 0.7 / 7.0;
        for _ in 0..7 {
            t.charge_with("d", share, |_| Ok(())).unwrap();
        }
        assert!(t.state("d").unwrap().remaining() < 1e-9);
    }
}
