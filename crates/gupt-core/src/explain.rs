//! Query planning without execution ("dry run").
//!
//! Before spending irreversible budget, an analyst can ask the runtime
//! what a query *would* do: the block plan, the Theorem 1 budget splits,
//! and the predicted Laplace noise scale per output dimension. The plan
//! reads only the spec and dataset metadata (sizes, declared ranges) —
//! never private values — so it is free.

use crate::blocks::default_block_size;
use crate::error::GuptError;
use crate::output_range::RangeEstimation;
use crate::query::{BlockSizeSpec, BudgetSpec, QuerySpec};
use crate::runtime::GuptRuntime;
use crate::telemetry::{QueryTelemetry, Stage, TelemetryReport};
use gupt_dp::Epsilon;
use std::fmt;
use std::time::Instant;

/// The per-stage budget split a query would use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSplit {
    /// ε available to the aggregation step, per output dimension.
    pub aggregation_per_dim: f64,
    /// ε spent on range estimation, per estimated dimension (0 for
    /// `GUPT-tight`).
    pub range_estimation_per_dim: f64,
    /// Number of dimensions charged for range estimation (output dims
    /// for loose, input dims for helper).
    pub range_estimation_dims: usize,
}

/// A dry-run query plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Total ε the query would charge.
    pub epsilon: f64,
    /// Block size β.
    pub block_size: usize,
    /// Number of blocks ℓ (γ rounds included).
    pub num_blocks: usize,
    /// Resampling factor γ.
    pub gamma: usize,
    /// Whether user-level (group-atomic) partitioning applies.
    pub user_level: bool,
    /// The Theorem 1 split.
    pub split: BudgetSplit,
    /// Predicted Laplace noise standard deviation per output dimension
    /// (`√2·γ·sᵈ/(ℓ·ε_dim)`), using planning-time range widths.
    pub noise_std_per_dim: Vec<f64>,
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query plan:")?;
        writeln!(f, "  epsilon       : {}", self.epsilon)?;
        writeln!(
            f,
            "  blocks        : {} × ~{} rows (γ = {}{})",
            self.num_blocks,
            self.block_size,
            self.gamma,
            if self.user_level { ", user-level" } else { "" }
        )?;
        writeln!(
            f,
            "  budget split  : {:.6}/dim aggregation, {:.6}/dim range estimation ({} dims)",
            self.split.aggregation_per_dim,
            self.split.range_estimation_per_dim,
            self.split.range_estimation_dims
        )?;
        writeln!(f, "  noise std/dim : {:?}", self.noise_std_per_dim)
    }
}

impl GuptRuntime {
    /// Plans `spec` against `dataset` without executing anything or
    /// charging any budget.
    ///
    /// Accuracy-goal budgets are resolved through the aged-data
    /// estimator (still free: aged data is non-private). The
    /// `Optimized` block-size strategy is planned at the paper default,
    /// since optimisation itself runs the program.
    ///
    /// Always returns the [`TelemetryReport`] covering the planning-time
    /// stages (budget resolution and block planning — the only stages a
    /// dry run visits) alongside the plan; callers that only want the
    /// plan drop it. Like all telemetry it is operator-facing and
    /// outside the ε guarantee.
    pub fn explain(
        &self,
        dataset: &str,
        spec: &QuerySpec,
    ) -> Result<(QueryPlan, TelemetryReport), GuptError> {
        let mut tel = QueryTelemetry::enabled();
        let start = Instant::now();
        let plan = self.explain_impl(dataset, spec, &mut tel)?;
        let report = tel
            .finish(start.elapsed())
            .expect("enabled collector always yields a report");
        Ok((plan, report))
    }

    fn explain_impl(
        &self,
        dataset: &str,
        spec: &QuerySpec,
        tel: &mut QueryTelemetry,
    ) -> Result<QueryPlan, GuptError> {
        let n = self.dataset_len(dataset)?;
        let p = spec.output_dimension();
        if p == 0 {
            return Err(GuptError::InvalidSpec(
                "program declares zero output dimensions".into(),
            ));
        }
        let mode = spec
            .range_estimation
            .as_ref()
            .ok_or_else(|| GuptError::InvalidSpec("no range-estimation mode chosen".into()))?;
        let plan_ranges = crate::runtime::planning_ranges(spec)?;
        if plan_ranges.len() != p {
            return Err(GuptError::DimensionMismatch {
                expected: p,
                got: plan_ranges.len(),
            });
        }

        let stage_start = Instant::now();
        let block_size = match spec.block_size_spec() {
            BlockSizeSpec::Fixed(0) => {
                return Err(GuptError::InvalidSpec("block size must be ≥ 1".into()))
            }
            BlockSizeSpec::Fixed(b) => b.clamp(1, n.max(1)),
            BlockSizeSpec::Default | BlockSizeSpec::Optimized => default_block_size(n),
        };
        let gamma = spec.gamma();
        let num_blocks = gamma * n.div_ceil(block_size.max(1)).max(1);
        tel.record_stage(Stage::BlockPlanning, stage_start.elapsed());

        let stage_start = Instant::now();
        let eps_total = match spec.budget() {
            BudgetSpec::Epsilon(e) => e,
            BudgetSpec::Accuracy(_) => self.estimate_epsilon_for(dataset, spec)?,
        };
        tel.record_stage(Stage::BudgetResolution, stage_start.elapsed());

        let fraction = mode.aggregation_budget_fraction();
        let aggregation_per_dim = eps_total.value() * fraction / p as f64;
        let (range_estimation_per_dim, range_estimation_dims) = match mode {
            RangeEstimation::Tight(_) => (0.0, 0),
            RangeEstimation::Loose(_) => (eps_total.value() / 2.0 / p as f64, p),
            RangeEstimation::Helper { .. } => {
                let k = self.dataset_dimension(dataset)?;
                (eps_total.value() / 2.0 / k.max(1) as f64, k)
            }
        };

        let eps_dim = Epsilon::new(aggregation_per_dim).map_err(GuptError::Dp)?;
        let noise_std_per_dim = plan_ranges
            .iter()
            .map(|r| {
                std::f64::consts::SQRT_2 * gamma as f64 * r.width()
                    / (num_blocks as f64 * eps_dim.value())
            })
            .collect();

        Ok(QueryPlan {
            epsilon: eps_total.value(),
            block_size,
            num_blocks,
            gamma,
            user_level: self.dataset_has_groups(dataset)?,
            split: BudgetSplit {
                aggregation_per_dim,
                range_estimation_per_dim,
                range_estimation_dims,
            },
            noise_std_per_dim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::runtime::GuptRuntimeBuilder;
    use gupt_dp::OutputRange;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn range(lo: f64, hi: f64) -> OutputRange {
        OutputRange::new(lo, hi).unwrap()
    }

    fn rows(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![(i % 50) as f64]).collect()
    }

    fn mean_spec() -> QuerySpec {
        QuerySpec::program(|b: &[Vec<f64>]| {
            vec![b.iter().map(|r| r[0]).sum::<f64>() / b.len().max(1) as f64]
        })
    }

    #[test]
    fn tight_plan_numbers() {
        let rt = GuptRuntimeBuilder::new()
            .register_dataset("t", rows(10_000), eps(10.0))
            .unwrap()
            .build();
        let spec = mean_spec()
            .epsilon(eps(2.0))
            .fixed_block_size(100)
            .range_estimation(RangeEstimation::Tight(vec![range(0.0, 50.0)]));
        let (plan, _) = rt.explain("t", &spec).unwrap();
        assert_eq!(plan.epsilon, 2.0);
        assert_eq!(plan.block_size, 100);
        assert_eq!(plan.num_blocks, 100);
        assert_eq!(plan.split.aggregation_per_dim, 2.0);
        assert_eq!(plan.split.range_estimation_dims, 0);
        // √2·50/(100·2) = 0.3535…
        assert!((plan.noise_std_per_dim[0] - 0.35355).abs() < 1e-4);
        assert!(!plan.user_level);
        // Nothing was charged.
        assert_eq!(rt.remaining_budget("t").unwrap(), 10.0);
    }

    #[test]
    fn loose_plan_halves_budget() {
        let rt = GuptRuntimeBuilder::new()
            .register_dataset("t", rows(10_000), eps(10.0))
            .unwrap()
            .build();
        let spec = mean_spec()
            .epsilon(eps(2.0))
            .range_estimation(RangeEstimation::Loose(vec![range(0.0, 500.0)]));
        let (plan, _) = rt.explain("t", &spec).unwrap();
        assert_eq!(plan.split.aggregation_per_dim, 1.0);
        assert_eq!(plan.split.range_estimation_per_dim, 1.0);
        assert_eq!(plan.split.range_estimation_dims, 1);
    }

    #[test]
    fn plan_matches_execution() {
        let rt = GuptRuntimeBuilder::new()
            .register_dataset("t", rows(5_000), eps(10.0))
            .unwrap()
            .seed(3)
            .build();
        let spec = mean_spec()
            .epsilon(eps(1.0))
            .fixed_block_size(50)
            .resampling(2)
            .range_estimation(RangeEstimation::Tight(vec![range(0.0, 50.0)]));
        let (plan, _) = rt.explain("t", &spec).unwrap();
        let answer = rt.run("t", spec).unwrap();
        assert_eq!(plan.block_size, answer.block_size);
        assert_eq!(plan.num_blocks, answer.num_blocks);
        assert_eq!(plan.gamma, answer.gamma);
        assert_eq!(plan.epsilon, answer.epsilon_spent);
    }

    #[test]
    fn user_level_flag_reflected() {
        let dataset = Dataset::new((0..100).map(|i| vec![(i % 10) as f64]).collect::<Vec<_>>())
            .unwrap()
            .with_group_column(0)
            .unwrap();
        let rt = GuptRuntimeBuilder::new()
            .register("u", dataset, eps(1.0))
            .unwrap()
            .build();
        let spec = mean_spec()
            .epsilon(eps(0.5))
            .range_estimation(RangeEstimation::Tight(vec![range(0.0, 10.0)]));
        assert!(rt.explain("u", &spec).unwrap().0.user_level);
    }

    #[test]
    fn display_renders() {
        let rt = GuptRuntimeBuilder::new()
            .register_dataset("t", rows(1_000), eps(1.0))
            .unwrap()
            .build();
        let spec = mean_spec()
            .epsilon(eps(0.5))
            .range_estimation(RangeEstimation::Tight(vec![range(0.0, 50.0)]));
        let text = rt.explain("t", &spec).unwrap().0.to_string();
        assert!(text.contains("query plan"), "{text}");
        assert!(text.contains("noise std"), "{text}");
    }

    #[test]
    fn traced_plan_reports_planning_stages() {
        use crate::telemetry::Stage;
        let rt = GuptRuntimeBuilder::new()
            .register_dataset("t", rows(1_000), eps(1.0))
            .unwrap()
            .build();
        let spec = mean_spec()
            .epsilon(eps(0.5))
            .range_estimation(RangeEstimation::Tight(vec![range(0.0, 50.0)]));
        let (plan, report) = rt.explain("t", &spec).unwrap();
        assert_eq!(plan.epsilon, 0.5);
        // A dry run visits exactly the two planning stages.
        assert!(report.stage(Stage::BlockPlanning).is_some());
        assert!(report.stage(Stage::BudgetResolution).is_some());
        assert!(report.stage(Stage::ChamberExecution).is_none());
        // And charges nothing.
        assert_eq!(rt.remaining_budget("t").unwrap(), 1.0);
    }

    #[test]
    fn missing_mode_rejected() {
        let rt = GuptRuntimeBuilder::new()
            .register_dataset("t", rows(100), eps(1.0))
            .unwrap()
            .build();
        assert!(rt.explain("t", &mean_spec()).is_err());
    }
}
